//! The on-chip L2 scratchpad memory.
//!
//! The platform contains 1 MiB of non-cached, physically addressed scratchpad
//! connected directly to the crossbar. It holds the device binaries and
//! shared data structures such as the software mailboxes used to trigger and
//! synchronise offloads, so its (short, constant) access latency shows up in
//! the offload/fork-join overhead of Figure 2.

use serde::{Deserialize, Serialize};
use sva_common::stats::Counter;
use sva_common::{Cycles, Result, MIB};

use crate::backing::SparseMemory;

/// The L2 scratchpad: constant-latency on-chip SRAM with functional backing
/// storage.
#[derive(Clone, Debug)]
pub struct Scratchpad {
    storage: SparseMemory,
    access_latency: Cycles,
    accesses: Counter,
}

/// Serializable view of the scratchpad configuration (storage contents are
/// not serialized).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScratchpadConfig {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Access latency as seen from the crossbar.
    pub access_latency: Cycles,
}

impl Default for ScratchpadConfig {
    fn default() -> Self {
        Self {
            size_bytes: MIB,
            access_latency: Cycles::new(6),
        }
    }
}

impl Scratchpad {
    /// Creates a scratchpad from a configuration.
    pub fn new(config: ScratchpadConfig) -> Self {
        Self {
            storage: SparseMemory::new(config.size_bytes),
            access_latency: config.access_latency,
            accesses: Counter::new(),
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.storage.capacity()
    }

    /// Constant access latency.
    pub const fn access_latency(&self) -> Cycles {
        self.access_latency
    }

    /// Timed read of `buf.len()` bytes at `offset` into the scratchpad.
    ///
    /// # Errors
    ///
    /// Returns [`sva_common::Error::OutOfBounds`] if the range exceeds the
    /// scratchpad capacity.
    pub fn read(&mut self, offset: u64, buf: &mut [u8]) -> Result<Cycles> {
        self.storage.read(offset, buf)?;
        self.accesses.incr();
        Ok(self.access_latency)
    }

    /// Timed write of `buf` at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`sva_common::Error::OutOfBounds`] if the range exceeds the
    /// scratchpad capacity.
    pub fn write(&mut self, offset: u64, buf: &[u8]) -> Result<Cycles> {
        self.storage.write(offset, buf)?;
        self.accesses.incr();
        Ok(self.access_latency)
    }

    /// Untimed (functional) access to the backing storage.
    pub fn storage(&self) -> &SparseMemory {
        &self.storage
    }

    /// Untimed (functional) mutable access to the backing storage.
    pub fn storage_mut(&mut self) -> &mut SparseMemory {
        &mut self.storage
    }

    /// Number of timed accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses.get()
    }
}

impl Default for Scratchpad {
    fn default() -> Self {
        Self::new(ScratchpadConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_one_mebibyte() {
        let spm = Scratchpad::default();
        assert_eq!(spm.capacity(), MIB);
    }

    #[test]
    fn timed_roundtrip() {
        let mut spm = Scratchpad::default();
        let lat_w = spm.write(0x100, &[1, 2, 3, 4]).unwrap();
        let mut buf = [0u8; 4];
        let lat_r = spm.read(0x100, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
        assert_eq!(lat_w, spm.access_latency());
        assert_eq!(lat_r, spm.access_latency());
        assert_eq!(spm.accesses(), 2);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut spm = Scratchpad::default();
        assert!(spm.write(MIB - 2, &[0u8; 4]).is_err());
    }
}
