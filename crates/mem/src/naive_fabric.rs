//! The retained linear-scan reference placement engine of the fabric.
//!
//! [`NaiveFabric`] is the original [`crate::Fabric`] placement algorithm,
//! kept verbatim (not test-gated) as the **executable specification** the
//! indexed engine is verified against — exactly the discipline
//! `sva_common::NaiveTimedQueue` established for the queue engine:
//!
//! * the per-channel reservation timeline is a `BTreeMap` keyed by
//!   `(start, seq)`, and every placement retry range-scans the start window
//!   `[placed - max_reservation_len, placed + span)` — which covers mostly
//!   *finished* history in a long measurement window — one conflict at a
//!   time;
//! * the initiator slot is resolved by a linear registry scan per grant;
//! * the `Weighted` policy's `weight_of` scans `timed_order` for the slot's
//!   position inside the conflict predicate, and membership is checked with
//!   `timed_order.contains` on every occupying grant.
//!
//! The property suite (`crates/mem/tests/fabric_identity.rs`) drives this
//! model and the indexed [`crate::Fabric`] on randomized workloads across
//! every arbitration policy and demands bit-identical grant outcomes and
//! statistics; the `simspeed` perf gate records the indexed engine's
//! throughput multiple over this baseline. Do not use it on hot paths, and
//! keep its placement semantics frozen — behavioural changes belong in
//! [`crate::Fabric`] *with* a matching update here only when the simulated
//! timing model itself is deliberately changed.

use std::collections::BTreeMap;

use sva_common::{
    ArbitrationPolicy, CreditPort, Cycles, InitiatorClass, InitiatorId, InitiatorStats, MemPortReq,
    PortTiming,
};

use crate::channels::ChannelStats;
use crate::fabric::{FabricConfig, GrantOutcome};

/// The data-bus timeline, channel queues and accounting of one DRAM channel
/// under the reference engine.
#[derive(Debug)]
struct NaiveChannelTimeline {
    /// Bus reservations keyed by `(start, insertion seq)` with
    /// `(end, owner slot, request priority)` values — the start-keyed map
    /// the indexed engine replaced.
    reservations: BTreeMap<(u64, u64), (u64, usize, u8)>,
    /// Longest single reservation seen, bounding how far below a placement
    /// point a conflicting interval can start.
    max_reservation_len: u64,
    /// Monotonic insertion counter disambiguating equal-start reservations.
    reservation_seq: u64,
    req: CreditPort,
    rsp: CreditPort,
    stats: ChannelStats,
}

impl NaiveChannelTimeline {
    fn new(req_depth: usize, rsp_depth: usize) -> Self {
        Self {
            reservations: BTreeMap::new(),
            max_reservation_len: 0,
            reservation_seq: 0,
            req: CreditPort::new(req_depth),
            rsp: CreditPort::new(rsp_depth),
            stats: ChannelStats::default(),
        }
    }
}

/// The reference arbitration/accounting engine (see the module docs).
#[derive(Debug)]
pub struct NaiveFabric {
    config: FabricConfig,
    initiators: Vec<(InitiatorId, InitiatorStats)>,
    channels: Vec<NaiveChannelTimeline>,
    served: Vec<u64>,
    timed_order: Vec<usize>,
    last_owner: Option<InitiatorId>,
    grants: u64,
    grant_switches: u64,
}

impl Default for NaiveFabric {
    fn default() -> Self {
        Self::new(FabricConfig::default())
    }
}

impl NaiveFabric {
    /// Creates a reference fabric with the given configuration.
    pub fn new(config: FabricConfig) -> Self {
        let n = config.channels.channels();
        let channels = (0..n)
            .map(|_| NaiveChannelTimeline::new(config.req_queue_depth, config.rsp_queue_depth))
            .collect();
        Self {
            config,
            initiators: Vec::new(),
            channels,
            served: Vec::new(),
            timed_order: Vec::new(),
            last_owner: None,
            grants: 0,
            grant_switches: 0,
        }
    }

    /// The configuration this fabric was built with.
    pub const fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Registers `id` if needed and returns its slot index — the linear
    /// registry scan the indexed engine replaced with a direct map.
    fn slot(&mut self, id: InitiatorId) -> usize {
        if let Some(i) = self.initiators.iter().position(|(x, _)| *x == id) {
            i
        } else {
            self.initiators.push((id, InitiatorStats::default()));
            self.served.push(0);
            self.initiators.len() - 1
        }
    }

    /// The weight of `slot` under the weighted policy — the `timed_order`
    /// position scan the indexed engine replaced with a cached weight.
    fn weight_of(&self, slot: usize) -> u32 {
        let idx = self
            .timed_order
            .iter()
            .position(|&s| s == slot)
            .unwrap_or(self.timed_order.len());
        self.config.policy.weight(idx)
    }

    fn queues_behind(&self, slot: usize, prio: u8, occ: u64, owner: usize, owner_prio: u8) -> bool {
        if owner == slot {
            return false;
        }
        match &self.config.policy {
            ArbitrationPolicy::RoundRobin => true,
            ArbitrationPolicy::FixedPriority => owner_prio >= prio,
            ArbitrationPolicy::Weighted(_) => {
                let me = (self.served[slot] + occ) as u128 * self.weight_of(owner) as u128;
                let them = self.served[owner] as u128 * self.weight_of(slot) as u128;
                me >= them
            }
        }
    }

    /// Grants one access, discarding the issue-stall component (mirrors
    /// [`crate::Fabric::grant`]).
    pub fn grant(&mut self, req: &MemPortReq, timing: PortTiming) -> Cycles {
        self.admit(req, timing).queue
    }

    /// Admits one access through the split-transaction flow of its channel
    /// — the exact contract of [`crate::Fabric::admit`], placed by the
    /// original one-conflict-at-a-time start-window scan.
    pub fn admit(&mut self, req: &MemPortReq, timing: PortTiming) -> GrantOutcome {
        let slot = self.slot(req.initiator);
        {
            let stats = &mut self.initiators[slot].1;
            if req.dir.is_write() {
                stats.writes += 1;
            } else {
                stats.reads += 1;
            }
            if req.burst {
                stats.bursts += 1;
            }
            stats.bytes += req.len;
            stats.occupancy_cycles += timing.occupancy.raw();
        }
        let channel = self.config.channels.channel_for(req.addr);
        {
            let ch = &mut self.channels[channel].stats;
            ch.grants += 1;
            ch.bytes += req.len;
            ch.occupancy_cycles += timing.occupancy.raw();
        }

        let arrival = req.arrival.raw();
        let occupancy = timing.occupancy.raw();
        let participates = self.config.queues_bounded()
            && (req.initiator.class() == InitiatorClass::Device || self.config.timed_host_ptw);

        let admitted = if participates {
            self.channels[channel].req.admission_at(req.arrival).raw()
        } else {
            arrival
        };
        let issue_stall = admitted - arrival;

        let mut placed = admitted;
        let wins_outright =
            req.priority > 0 && matches!(self.config.policy, ArbitrationPolicy::RoundRobin);
        loop {
            if !wins_outright {
                // A conflicting interval satisfies start < placed + occ
                // and end > placed; since no reservation is longer than
                // max_reservation_len, its start also exceeds
                // placed - max_reservation_len. Range-scan that window.
                let lo = placed.saturating_sub(self.channels[channel].max_reservation_len);
                let hi = placed + occupancy.max(1);
                let conflict = self.channels[channel]
                    .reservations
                    .range((lo, 0)..(hi, 0))
                    .find(|(_, &(end, owner, owner_prio))| {
                        end > placed
                            && self.queues_behind(slot, req.priority, occupancy, owner, owner_prio)
                    })
                    .map(|(_, &(end, _, _))| end);
                if let Some(end) = conflict {
                    placed = end;
                    continue;
                }
            }
            if participates {
                let rsp_free = self.channels[channel]
                    .rsp
                    .admission_at(Cycles::new(placed))
                    .raw();
                if rsp_free > placed {
                    placed = rsp_free;
                    continue;
                }
            }
            break;
        }
        let mut queue = Cycles::ZERO;
        if placed > admitted {
            queue = Cycles::new(placed - admitted);
            let stats = &mut self.initiators[slot].1;
            stats.queue_cycles += queue.raw();
            stats.contended_grants += 1;
            self.channels[channel].stats.queue_cycles += queue.raw();
        }
        if participates {
            let (_, req_occ) = self.channels[channel]
                .req
                .acquire(Cycles::new(admitted), Cycles::new(placed));
            let retire = placed + occupancy + timing.latency.raw();
            let (_, rsp_occ) = self.channels[channel]
                .rsp
                .acquire(Cycles::new(placed), Cycles::new(retire));
            let stats = &mut self.initiators[slot].1;
            stats.issue_stall_cycles += issue_stall;
            stats.req_queue_peak = stats.req_queue_peak.max(req_occ as u64);
            stats.rsp_queue_peak = stats.rsp_queue_peak.max(rsp_occ as u64);
            let ch = &mut self.channels[channel].stats;
            ch.issue_stall_cycles += issue_stall;
            ch.req_queue_peak = ch.req_queue_peak.max(req_occ as u64);
            ch.rsp_queue_peak = ch.rsp_queue_peak.max(rsp_occ as u64);
        }
        if occupancy > 0 {
            if matches!(req.initiator, InitiatorId::Dma { .. }) && !self.timed_order.contains(&slot)
            {
                self.timed_order.push(slot);
            }
            self.served[slot] += occupancy;
            let timeline = &mut self.channels[channel];
            timeline.reservation_seq += 1;
            timeline.reservations.insert(
                (placed, timeline.reservation_seq),
                (placed + occupancy, slot, req.priority),
            );
            timeline.max_reservation_len = timeline.max_reservation_len.max(occupancy);
        }

        if self.last_owner != Some(req.initiator) {
            if self.last_owner.is_some() {
                self.grant_switches += 1;
            }
            self.last_owner = Some(req.initiator);
        }
        self.grants += 1;
        GrantOutcome {
            queue,
            issue_stall: Cycles::new(issue_stall),
        }
    }

    /// Records the final latency the initiator observed.
    pub fn note_latency(&mut self, id: InitiatorId, latency: Cycles) {
        let slot = self.slot(id);
        self.initiators[slot].1.latency_cycles += latency.raw();
    }

    /// Statistics of one initiator, if it has accessed the fabric.
    pub fn initiator_stats(&self, id: InitiatorId) -> Option<InitiatorStats> {
        self.initiators
            .iter()
            .find(|(x, _)| *x == id)
            .map(|(_, s)| *s)
    }

    /// Sum of all per-initiator statistics.
    pub fn total(&self) -> InitiatorStats {
        let mut total = InitiatorStats::default();
        for (_, s) in &self.initiators {
            total.merge(s);
        }
        total
    }

    /// Number of distinct initiators that have accessed the fabric.
    pub fn initiator_count(&self) -> usize {
        self.initiators.len()
    }

    /// Per-channel statistics, indexed by channel.
    pub fn channel_stats(&self) -> Vec<ChannelStats> {
        self.channels.iter().map(|c| c.stats).collect()
    }

    /// Total grants issued since the last reset.
    pub const fn grants(&self) -> u64 {
        self.grants
    }

    /// Grants whose initiator differed from the previous grant's.
    pub const fn grant_switches(&self) -> u64 {
        self.grant_switches
    }

    /// Clears all statistics and every channel timeline.
    pub fn reset(&mut self) {
        let config = self.config.clone();
        *self = Self::new(config);
    }

    /// Drops every channel's reservations while keeping all accumulated
    /// statistics (mirrors [`crate::Fabric::clear_timelines`]).
    pub fn clear_timelines(&mut self) {
        for ch in &mut self.channels {
            ch.reservations.clear();
            ch.max_reservation_len = 0;
            ch.reservation_seq = 0;
            ch.req.clear_entries();
            ch.rsp.clear_entries();
        }
        for served in &mut self.served {
            *served = 0;
        }
        self.timed_order.clear();
    }
}
