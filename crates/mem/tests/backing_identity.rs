//! Lockstep identity property suite for the direct-map backing store.
//!
//! The direct-map [`SparseMemory`] (frame table + generation-tagged memo +
//! typed single-frame fast paths) must be **observation-identical** to the
//! retained [`NaiveSparseMemory`] reference (the original per-frame hash-map
//! engine) on every operation: identical read-back bytes, identical typed
//! values, identical error outcomes and identical resident-frame accounting.
//! The suite drives both engines through `DeterministicRng` operation
//! sequences covering
//!
//! * generic reads/writes of random lengths, biased to land on and straddle
//!   frame boundaries,
//! * the typed `u64`/`f32` accessor pairs on aligned, unaligned and
//!   straddling offsets,
//! * `fill` with zero and non-zero values (the zero-fill-of-absent-frames
//!   no-op spec fix applies to both engines),
//! * periodic `clear` (generation bump on the indexed engine),
//! * out-of-bounds attempts, asserting both engines reject them,
//!
//! and proves the harness has teeth by catching an injected stale-memo bug
//! (`debug_freeze_memo`, per the PR 8/9 discipline).

use sva_common::rng::DeterministicRng;
use sva_common::PAGE_SIZE;
use sva_mem::{NaiveSparseMemory, SparseMemory};

const CAPACITY: u64 = 64 * PAGE_SIZE;

/// Picks an offset biased toward frame boundaries: a third of the draws land
/// within ±8 bytes of a frame edge so straddles and edge-exact accesses are
/// exercised constantly, not occasionally.
fn offset_near_boundary(rng: &mut DeterministicRng, max: u64) -> u64 {
    if rng.next_below(3) == 0 {
        let frame = 1 + rng.next_below(max / PAGE_SIZE - 1);
        let edge = frame * PAGE_SIZE;
        let skew = rng.next_below(17); // 0..=16
        (edge + skew).saturating_sub(8).min(max - 1)
    } else {
        rng.next_below(max)
    }
}

/// Runs one random operation against both engines and asserts every
/// observable agrees. Returns a digest contribution so the caller can prove
/// the sequence actually touched data.
fn lockstep_op(
    rng: &mut DeterministicRng,
    indexed: &mut SparseMemory,
    naive: &mut NaiveSparseMemory,
) -> u64 {
    let mut digest = 0u64;
    match rng.next_below(10) {
        // Generic write of a random chunk (1..=200 bytes, boundary-biased).
        0..=2 => {
            let offset = offset_near_boundary(rng, CAPACITY - 256);
            let len = 1 + rng.next_below(200) as usize;
            let seed = rng.next_below(u64::MAX);
            let buf: Vec<u8> = (0..len).map(|i| (seed as usize + i) as u8).collect();
            indexed.write(offset, &buf).unwrap();
            naive.write(offset, &buf).unwrap();
        }
        // Generic read + byte-for-byte compare.
        3..=4 => {
            let offset = offset_near_boundary(rng, CAPACITY - 256);
            let len = 1 + rng.next_below(200) as usize;
            let mut a = vec![0u8; len];
            let mut b = vec![0xFFu8; len];
            indexed.read(offset, &mut a).unwrap();
            naive.read(offset, &mut b).unwrap();
            assert_eq!(a, b, "read divergence at offset {offset} len {len}");
            digest = a
                .iter()
                .fold(digest, |d, &x| d.wrapping_mul(31).wrapping_add(x as u64));
        }
        // Typed u64 pair: write on one draw, read-compare on the next.
        5 => {
            let offset = offset_near_boundary(rng, CAPACITY - 8);
            if rng.next_below(2) == 0 {
                let v = rng.next_below(u64::MAX);
                assert_eq!(
                    indexed.write_u64(offset, v).unwrap(),
                    naive.write_u64(offset, v).unwrap()
                );
            } else {
                let a = indexed.read_u64(offset).unwrap();
                let b = naive.read_u64(offset).unwrap();
                assert_eq!(a, b, "u64 divergence at offset {offset}");
                digest = digest.wrapping_mul(31).wrapping_add(a);
            }
        }
        // Typed f32 pair (bit-compared: NaN payloads must survive).
        6 => {
            let offset = offset_near_boundary(rng, CAPACITY - 4);
            if rng.next_below(2) == 0 {
                let v = f32::from_bits(rng.next_below(u64::MAX) as u32);
                indexed.write_f32(offset, v).unwrap();
                naive.write_f32(offset, v).unwrap();
            } else {
                let a = indexed.read_f32(offset).unwrap().to_bits();
                let b = naive.read_f32(offset).unwrap().to_bits();
                assert_eq!(a, b, "f32 divergence at offset {offset}");
                digest = digest.wrapping_mul(31).wrapping_add(a as u64);
            }
        }
        // Fill — zero half the time, so the absent-frame no-op spec fix is
        // continuously cross-checked against the resident accounting below.
        7 => {
            let offset = offset_near_boundary(rng, CAPACITY - 3 * PAGE_SIZE - 1);
            let len = 1 + rng.next_below(3 * PAGE_SIZE);
            let value = if rng.next_below(2) == 0 {
                0
            } else {
                rng.next_below(256) as u8
            };
            indexed.fill(offset, len, value).unwrap();
            naive.fill(offset, len, value).unwrap();
        }
        // Out-of-bounds attempts: both engines must reject, neither may
        // mutate (resident accounting is compared after every op).
        8 => {
            let offset = CAPACITY - rng.next_below(16);
            let len = 32usize;
            let mut buf = vec![0u8; len];
            assert!(indexed.read(offset, &mut buf).is_err());
            assert!(naive.read(offset, &mut buf).is_err());
            assert!(indexed.write(offset, &buf).is_err());
            assert!(naive.write(offset, &buf).is_err());
            assert!(indexed.read_u64(CAPACITY - 4).is_err());
            assert!(naive.read_u64(CAPACITY - 4).is_err());
        }
        // Rare clear: resets contents and bumps the indexed generation, so
        // stale-memo coverage spans clears.
        _ => {
            if rng.next_below(8) == 0 {
                indexed.clear();
                naive.clear();
            }
        }
    }
    assert_eq!(
        indexed.resident_frames(),
        naive.resident_frames(),
        "resident_frames divergence"
    );
    assert_eq!(
        indexed.resident_bytes(),
        naive.resident_bytes(),
        "resident_bytes divergence"
    );
    indexed.debug_validate();
    digest
}

/// Drives `ops` lockstep operations from `seed`; returns the read digest.
fn run_lockstep(seed: u64, ops: usize) -> u64 {
    let mut rng = DeterministicRng::new(seed);
    let mut indexed = SparseMemory::new(CAPACITY);
    let mut naive = NaiveSparseMemory::new(CAPACITY);
    let mut digest = 0u64;
    for _ in 0..ops {
        digest = digest.wrapping_add(lockstep_op(&mut rng, &mut indexed, &mut naive));
    }
    // Final sweep: the *entire* store must agree byte-for-byte, including
    // frames only one engine might have materialized.
    let mut a = vec![0u8; PAGE_SIZE as usize];
    let mut b = vec![0u8; PAGE_SIZE as usize];
    for frame in 0..CAPACITY / PAGE_SIZE {
        indexed.read(frame * PAGE_SIZE, &mut a).unwrap();
        naive.read(frame * PAGE_SIZE, &mut b).unwrap();
        assert_eq!(a, b, "final sweep divergence in frame {frame}");
    }
    indexed.debug_validate();
    digest
}

#[test]
fn direct_map_store_is_identical_to_naive_reference() {
    let mut total = 0u64;
    for seed in [11, 23, 47, 8191] {
        total = total.wrapping_add(run_lockstep(seed, 4000));
    }
    // The digest must be non-zero: a sequence that never read data back
    // would vacuously pass, so prove the suite actually observed contents.
    assert_ne!(total, 0, "lockstep sequences never observed any data");
}

#[test]
fn lockstep_catches_injected_stale_memo() {
    // Teeth: freeze the memo refresh on the indexed engine (materialising
    // writes stop updating the cached frame presence) and drive the exact
    // staleness window through the same lockstep comparators: a read of an
    // absent frame caches "absent" in the memo, a write then materialises
    // the frame without refreshing it, and the read-back is served from the
    // stale memo — zeros instead of the written bytes. This is precisely the
    // class of bug the memo design must never exhibit (present-memos cannot
    // go stale because frames only vanish via `clear`, which bumps the
    // generation); the suite must detect it the moment it is injected.
    let caught = std::panic::catch_unwind(|| {
        let mut indexed = SparseMemory::new(CAPACITY);
        let mut naive = NaiveSparseMemory::new(CAPACITY);
        indexed.debug_freeze_memo();
        for frame in 0..CAPACITY / PAGE_SIZE {
            let offset = frame * PAGE_SIZE + 8;
            // 1. Observe the absent frame (both engines agree: zero).
            assert_eq!(
                indexed.read_u64(offset).unwrap(),
                naive.read_u64(offset).unwrap()
            );
            // 2. Materialise it with a nonzero value on both engines.
            indexed.write_u64(offset, 0xDEAD_BEEF_0000 + frame).unwrap();
            naive.write_u64(offset, 0xDEAD_BEEF_0000 + frame).unwrap();
            // 3. Lockstep read-back: the frozen memo serves stale zeros.
            assert_eq!(
                indexed.read_u64(offset).unwrap(),
                naive.read_u64(offset).unwrap(),
                "stale-memo divergence in frame {frame}"
            );
        }
    })
    .is_err();
    assert!(
        caught,
        "lockstep suite failed to catch the injected stale-memo bug"
    );
}
