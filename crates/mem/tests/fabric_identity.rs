//! Cycle-identity property suite for the indexed fabric placement engine.
//!
//! The indexed [`Fabric`] (end-indexed reservation probe, per-slot arbiter
//! caches) must be **bit-identical** to the retained [`NaiveFabric`]
//! reference (the original scan-with-retry algorithm) on every grant:
//! identical [`GrantOutcome`]s, identical per-initiator and per-channel
//! statistics, identical grant/switch counters. The suite drives both
//! engines on `DeterministicRng` workloads across
//!
//! * all three arbitration policies (RoundRobin, Weighted with random
//!   weights, FixedPriority),
//! * unbounded and shallow bounded channel queue depths,
//! * request priorities 0..3 and mixed occupancies (including
//!   zero-occupancy host/PTW probes),
//! * out-of-order arrivals: per-cluster DMA shards restart their local
//!   cursors at zero mid-run, exactly like the platform's sharded offload,
//! * one and several DRAM channels,
//!
//! and additionally proves the harness has teeth by catching an injected
//! placement off-by-one (the PR 6 `OffByOneQueue` discipline), and that
//! watermark compaction is outcome-neutral under its contract.

use sva_common::rng::DeterministicRng;
use sva_common::{ArbitrationPolicy, Cycles, InitiatorId, MemPortReq, PhysAddr, PortTiming};
use sva_mem::channels::DramChannelConfig;
use sva_mem::{Fabric, FabricConfig, GrantOutcome, NaiveFabric};

/// One timed access: the request and its port timing.
#[derive(Clone, Debug)]
struct Access {
    req: MemPortReq,
    timing: PortTiming,
}

/// A randomized workload mimicking the platform's traffic shape: several
/// DMA shards whose local cursors restart at zero (arrival order is *not*
/// simulation order), host/PTW probes sprinkled across the window, random
/// priorities, burst lengths and channel-spreading addresses.
fn workload(rng: &mut DeterministicRng, accesses: usize) -> Vec<Access> {
    let shards = 1 + rng.next_below(4) as usize;
    let mut cursors = vec![0u64; shards];
    let mut out = Vec::with_capacity(accesses);
    for i in 0..accesses {
        let kind = rng.next_below(10);
        let access = if kind < 7 {
            // DMA burst from a shard; shards are simulated round-robin so a
            // later-simulated shard's early arrivals land between an
            // earlier shard's late ones.
            let shard = i % shards;
            cursors[shard] += rng.next_below(400);
            let occ = 16 + rng.next_below(300);
            let addr = 0x8000_0000 + rng.next_below(64) * 4096;
            let prio = (rng.next_below(4) / 2) as u8; // mostly 0, some 1
            Access {
                req: MemPortReq::read(InitiatorId::dma(shard as u32), PhysAddr::new(addr), occ * 8)
                    .as_burst()
                    .with_priority(prio)
                    .at(Cycles::new(cursors[shard])),
                timing: PortTiming {
                    latency: Cycles::new(100 + rng.next_below(200)),
                    occupancy: Cycles::new(occ),
                },
            }
        } else {
            // Host / host-stream / PTW probe at a random point in the
            // window so far; zero occupancy half the time (the untimed
            // default), a few payload beats otherwise (the global-clock
            // engine).
            let id = match rng.next_below(3) {
                0 => InitiatorId::Host,
                1 => InitiatorId::HostStream,
                _ => InitiatorId::Ptw,
            };
            let horizon = cursors.iter().copied().max().unwrap_or(0) + 100;
            let arrival = rng.next_below(horizon);
            let occ = if rng.next_below(2) == 0 {
                0
            } else {
                1 + rng.next_below(8)
            };
            let addr = 0x8000_0000 + rng.next_below(64) * 4096;
            let write = rng.next_below(3) == 0;
            let req = if write {
                MemPortReq::write(id, PhysAddr::new(addr), 8)
            } else {
                MemPortReq::read(id, PhysAddr::new(addr), 8)
            };
            Access {
                req: req.at(Cycles::new(arrival)),
                timing: PortTiming {
                    latency: Cycles::new(30),
                    occupancy: Cycles::new(occ),
                },
            }
        };
        out.push(access);
    }
    out
}

fn policies(rng: &mut DeterministicRng) -> Vec<ArbitrationPolicy> {
    let weights: Vec<u32> = (0..4).map(|_| 1 + rng.next_below(8) as u32).collect();
    vec![
        ArbitrationPolicy::RoundRobin,
        ArbitrationPolicy::FixedPriority,
        ArbitrationPolicy::Weighted(weights),
    ]
}

fn config(policy: ArbitrationPolicy, channels: usize, bounded: bool, timed: bool) -> FabricConfig {
    FabricConfig {
        policy,
        channels: DramChannelConfig::interleaved(channels),
        timed_host_ptw: timed,
        req_queue_depth: if bounded { 2 } else { usize::MAX },
        rsp_queue_depth: if bounded { 3 } else { usize::MAX },
        ..FabricConfig::default()
    }
}

/// Asserts the two engines agree on every grant and every observable
/// statistic for `accesses`, returning the indexed outcomes.
fn assert_identical(config: FabricConfig, accesses: &[Access], label: &str) -> Vec<GrantOutcome> {
    let mut indexed = Fabric::new(config.clone());
    let mut naive = NaiveFabric::new(config);
    let mut outcomes = Vec::with_capacity(accesses.len());
    for (i, a) in accesses.iter().enumerate() {
        let x = indexed.admit(&a.req, a.timing);
        let y = naive.admit(&a.req, a.timing);
        assert_eq!(x, y, "{label}: grant {i} diverged ({:?})", a.req);
        outcomes.push(x);
    }
    for id in [
        InitiatorId::Host,
        InitiatorId::HostStream,
        InitiatorId::Ptw,
        InitiatorId::dma(0),
        InitiatorId::dma(1),
        InitiatorId::dma(2),
        InitiatorId::dma(3),
    ] {
        assert_eq!(
            indexed.initiator_stats(id),
            naive.initiator_stats(id),
            "{label}: stats diverged for {id}"
        );
    }
    assert_eq!(indexed.total(), naive.total(), "{label}: totals diverged");
    assert_eq!(
        indexed.channel_stats(),
        naive.channel_stats(),
        "{label}: channel stats diverged"
    );
    assert_eq!(indexed.grants(), naive.grants(), "{label}: grant counts");
    assert_eq!(
        indexed.grant_switches(),
        naive.grant_switches(),
        "{label}: switch counts"
    );
    outcomes
}

/// The core identity property: randomized workloads across
/// {RoundRobin, Weighted, FixedPriority} × {unbounded, shallow} ×
/// {untimed, timed host/PTW} × {1, 2, 4 channels}.
#[test]
fn indexed_placement_is_cycle_identical_to_the_naive_reference() {
    let mut rng = DeterministicRng::new(0xFAB1_C1D5);
    for round in 0..12u64 {
        let accesses = workload(&mut rng, 300);
        for policy in policies(&mut rng) {
            for &channels in &[1usize, 2, 4] {
                for &bounded in &[false, true] {
                    for &timed in &[false, true] {
                        let label = format!(
                            "round {round}, {}, {channels}ch, bounded={bounded}, timed={timed}",
                            policy.label()
                        );
                        let cfg = config(policy.clone(), channels, bounded, timed);
                        assert_identical(cfg, &accesses, &label);
                    }
                }
            }
        }
    }
}

/// Identity survives window boundaries: `clear_timelines` on both engines,
/// then a second window whose cursors restart at zero.
#[test]
fn identity_holds_across_measurement_windows() {
    let mut rng = DeterministicRng::new(0x57AC_CA75);
    for policy in policies(&mut rng) {
        let cfg = config(policy.clone(), 2, true, true);
        let mut indexed = Fabric::new(cfg.clone());
        let mut naive = NaiveFabric::new(cfg);
        for window in 0..3 {
            let accesses = workload(&mut rng, 200);
            for (i, a) in accesses.iter().enumerate() {
                let x = indexed.admit(&a.req, a.timing);
                let y = naive.admit(&a.req, a.timing);
                assert_eq!(
                    x,
                    y,
                    "{}: window {window} grant {i} diverged",
                    policy.label()
                );
            }
            indexed.clear_timelines();
            naive.clear_timelines();
        }
        assert_eq!(indexed.total(), naive.total());
        assert_eq!(indexed.channel_stats(), naive.channel_stats());
    }
}

/// Watermark compaction is outcome-neutral under its contract: with
/// monotone arrivals, periodically folding history changes no grant and
/// keeps the live reservation set bounded.
#[test]
fn compaction_is_outcome_neutral_and_bounds_the_live_set() {
    let mut rng = DeterministicRng::new(0xC04_AC7);
    for policy in policies(&mut rng) {
        let cfg = config(policy.clone(), 2, false, true);
        let mut compacted = Fabric::new(cfg.clone());
        let mut reference = Fabric::new(cfg);
        // One monotone clock shared by a few initiators — the shape of the
        // open-loop serving layer, where compaction is safe mid-stream.
        let mut t = 0u64;
        let mut peak = 0usize;
        for i in 0..1500u64 {
            // Underloaded on purpose: compaction can only fold reservations
            // that finish before later arrivals, so a saturated bus (whose
            // backlog stretches every end far past "now") would leave
            // nothing to fold.
            t += 20 + rng.next_below(80);
            let dev = rng.next_below(3) as u32;
            let occ = 8 + rng.next_below(40);
            let addr = 0x8000_0000 + rng.next_below(32) * 4096;
            let req = MemPortReq::read(InitiatorId::dma(dev), PhysAddr::new(addr), occ * 8)
                .as_burst()
                .at(Cycles::new(t));
            let timing = PortTiming {
                latency: Cycles::new(100),
                occupancy: Cycles::new(occ),
            };
            let a = compacted.admit(&req, timing);
            let b = reference.admit(&req, timing);
            assert_eq!(a, b, "{}: grant {i} diverged", policy.label());
            if i % 64 == 63 {
                compacted.compact_before(Cycles::new(t));
            }
            peak = peak.max(compacted.event_count());
        }
        assert_eq!(compacted.total(), reference.total());
        assert_eq!(compacted.channel_stats(), reference.channel_stats());
        assert!(compacted.compacted_events() > 0);
        assert!(
            peak < reference.event_count() / 2,
            "{}: live set must stay far below the uncompacted timeline \
             (peak {peak} vs {})",
            policy.label(),
            reference.event_count()
        );
    }
}

/// An adversarial engine that perturbs every placement's occupancy by one
/// cycle before delegating to the real indexed fabric — the injected
/// off-by-one the identity harness must catch.
struct OffByOneFabric(Fabric);

impl OffByOneFabric {
    fn admit(&mut self, req: &MemPortReq, timing: PortTiming) -> GrantOutcome {
        let skewed = if timing.occupancy.raw() > 0 {
            PortTiming {
                latency: timing.latency,
                occupancy: timing.occupancy + Cycles::new(1),
            }
        } else {
            timing
        };
        self.0.admit(req, skewed)
    }
}

/// The harness has teeth: a one-cycle occupancy skew diverges from the
/// reference within one randomized workload.
#[test]
fn identity_harness_catches_an_injected_off_by_one() {
    let mut rng = DeterministicRng::new(0x0FF_B10E);
    let accesses = workload(&mut rng, 300);
    let cfg = config(ArbitrationPolicy::RoundRobin, 1, false, false);
    let mut skewed = OffByOneFabric(Fabric::new(cfg.clone()));
    let mut naive = NaiveFabric::new(cfg);
    let diverged = accesses.iter().any(|a| {
        let x = skewed.admit(&a.req, a.timing);
        let y = naive.admit(&a.req, a.timing);
        x != y
    }) || skewed.0.total() != naive.total();
    assert!(
        diverged,
        "the identity harness failed to catch a one-cycle occupancy skew"
    );
}
