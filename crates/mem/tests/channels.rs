//! Property tests of the multi-channel DRAM backend, driven by
//! `DeterministicRng` (the build is offline; no proptest). Three invariants
//! lock the channel layer down:
//!
//! 1. splitting the DRAM path into channels never changes *what* is
//!    accounted — total bytes and occupancy are conserved across channel
//!    counts, and the per-channel rows always sum to the fabric totals;
//! 2. the address interleave is a partition of the address space — every
//!    address maps to exactly one channel and whole granules never straddle;
//! 3. `num_channels = 1` reproduces the single-timeline fabric
//!    cycle-for-cycle, checked against an independent naive reimplementation
//!    of first-fit interval placement.
//!
//! The split-transaction queue layer adds three more:
//!
//! 4. finite depths conserve the *what* — bytes, occupancy, grants — and
//!    the per-channel stall/queue rows keep summing to the fabric totals;
//! 5. shallower queues never reduce total cycles (backpressure only
//!    delays);
//! 6. depth = ∞ — and any depth the traffic never fills — is cycle- and
//!    stall-identical to the pure reservation fabric.

use sva_common::rng::DeterministicRng;
use sva_common::{Cycles, InitiatorId, MemPortReq, PhysAddr, PortTiming};
use sva_mem::channels::DramChannelConfig;
use sva_mem::fabric::{Fabric, FabricConfig};

const DRAM_BASE: u64 = 0x8000_0000;

/// One randomly drawn timed access.
#[derive(Clone, Copy, Debug)]
struct Access {
    device: u32,
    addr: u64,
    len: u64,
    arrival: u64,
    occupancy: u64,
}

fn random_accesses(rng: &mut DeterministicRng, n: usize) -> Vec<Access> {
    (0..n)
        .map(|_| {
            let len = 64 * (1 + rng.next_below(32));
            Access {
                device: 1 + 2 * rng.next_below(4) as u32,
                addr: DRAM_BASE + rng.next_below(1 << 14) * 512,
                len,
                arrival: rng.next_below(50_000),
                occupancy: len / 8,
            }
        })
        .collect()
}

fn drive(fabric: &mut Fabric, accesses: &[Access]) -> Vec<u64> {
    drive_split(fabric, accesses)
        .into_iter()
        .map(|(queue, _)| queue)
        .collect()
}

/// Drives the accesses and returns each one's `(queue, issue_stall)` split.
fn drive_split(fabric: &mut Fabric, accesses: &[Access]) -> Vec<(u64, u64)> {
    accesses
        .iter()
        .map(|a| {
            let req = MemPortReq::read(InitiatorId::dma(a.device), PhysAddr::new(a.addr), a.len)
                .as_burst()
                .at(Cycles::new(a.arrival));
            let outcome = fabric.admit(
                &req,
                PortTiming {
                    latency: Cycles::new(100),
                    occupancy: Cycles::new(a.occupancy),
                },
            );
            (outcome.queue.raw(), outcome.issue_stall.raw())
        })
        .collect()
}

fn bounded_config(depth: usize) -> FabricConfig {
    FabricConfig {
        req_queue_depth: depth,
        rsp_queue_depth: depth,
        ..FabricConfig::default()
    }
}

#[test]
fn totals_are_conserved_across_channel_counts() {
    let mut rng = DeterministicRng::new(0xC4A77E1);
    for case in 0..12 {
        let mut case_rng = rng.fork(case);
        let n = 1 + case_rng.next_below(150) as usize;
        let accesses = random_accesses(&mut case_rng, n);
        let mut reference: Option<(u64, u64, u64)> = None;
        for channels in [1usize, 2, 3, 4, 8] {
            let mut fabric = Fabric::new(FabricConfig {
                channels: DramChannelConfig::interleaved(channels),
                ..FabricConfig::default()
            });
            drive(&mut fabric, &accesses);
            let total = fabric.total();
            let per_channel = fabric.channel_stats();
            assert_eq!(per_channel.len(), channels);

            // Per-channel rows sum to the fabric totals, whatever the split.
            assert_eq!(
                per_channel.iter().map(|c| c.bytes).sum::<u64>(),
                total.bytes
            );
            assert_eq!(
                per_channel.iter().map(|c| c.occupancy_cycles).sum::<u64>(),
                total.occupancy_cycles
            );
            assert_eq!(
                per_channel.iter().map(|c| c.queue_cycles).sum::<u64>(),
                total.queue_cycles
            );
            assert_eq!(
                per_channel.iter().map(|c| c.grants).sum::<u64>(),
                accesses.len() as u64
            );

            // Bytes and occupancy do not depend on the channel count.
            let key = (total.bytes, total.occupancy_cycles, total.accesses());
            match reference {
                None => reference = Some(key),
                Some(k) => assert_eq!(k, key, "case {case}, {channels} channels"),
            }
        }
    }
}

#[test]
fn interleaving_is_a_partition_of_the_address_space() {
    let mut rng = DeterministicRng::new(0x9A57171);
    for case in 0..40 {
        let mut case_rng = rng.fork(case);
        let cfg = DramChannelConfig {
            num_channels: 1 + case_rng.next_below(8) as usize,
            rank_bits: case_rng.next_below(5) as u32,
            interleave_granule: 1 << (6 + case_rng.next_below(8)),
        };
        let granule = cfg.interleave_granule;
        for _ in 0..200 {
            let addr = case_rng.next_below(1 << 40);
            // Total: every address maps to exactly one in-range channel
            // (channel_for is a function, so disjointness is structural).
            let ch = cfg.channel_for(PhysAddr::new(addr));
            assert!(ch < cfg.channels());
            // Granules never straddle: first and last byte agree.
            let base = addr / granule * granule;
            assert_eq!(
                cfg.channel_for(PhysAddr::new(base)),
                cfg.channel_for(PhysAddr::new(base + granule - 1)),
                "granule at {base:#x} straddles channels"
            );
        }
        // Without rank folding, a contiguous run of granules spreads evenly:
        // each channel serves an equal share of every full rotation.
        if cfg.rank_bits == 0 && cfg.channels() > 1 {
            let n = cfg.channels();
            let mut counts = vec![0usize; n];
            let start = case_rng.next_below(1 << 30) * granule;
            for g in 0..(4 * n as u64) {
                counts[cfg.channel_for(PhysAddr::new(start + g * granule))] += 1;
            }
            assert!(counts.iter().all(|&c| c == 4), "uneven spread: {counts:?}");
        }
    }
}

/// Naive reimplementation of the single shared-bus first-fit placement the
/// pre-channel fabric used: scan every reservation in (start, insertion)
/// order, jump past the first conflict, repeat until free.
struct NaiveTimeline {
    /// `(start, end, owner)` in insertion order.
    reservations: Vec<(u64, u64, usize)>,
}

impl NaiveTimeline {
    fn place(&mut self, arrival: u64, occupancy: u64, owner: usize) -> u64 {
        let mut placed = arrival;
        loop {
            let conflict = self
                .reservations
                .iter()
                .enumerate()
                .filter(|&(_, &(s, e, o))| o != owner && s < placed + occupancy && e > placed)
                .min_by_key(|&(idx, &(s, _, _))| (s, idx))
                .map(|(_, &(_, e, _))| e);
            match conflict {
                Some(end) => placed = end,
                None => break,
            }
        }
        if occupancy > 0 {
            self.reservations.push((placed, placed + occupancy, owner));
        }
        placed - arrival
    }
}

#[test]
fn single_channel_reproduces_the_single_timeline_fabric_cycle_for_cycle() {
    let mut rng = DeterministicRng::new(0x1D3A1);
    for case in 0..16 {
        let mut case_rng = rng.fork(case);
        let n = 1 + case_rng.next_below(120) as usize;
        let accesses = random_accesses(&mut case_rng, n);

        let mut fabric = Fabric::new(FabricConfig {
            channels: DramChannelConfig::SINGLE,
            ..FabricConfig::default()
        });
        let fabric_queues = drive(&mut fabric, &accesses);

        let mut naive = NaiveTimeline {
            reservations: Vec::new(),
        };
        let mut owners: Vec<u32> = Vec::new();
        let naive_queues: Vec<u64> = accesses
            .iter()
            .map(|a| {
                let owner = match owners.iter().position(|&d| d == a.device) {
                    Some(i) => i,
                    None => {
                        owners.push(a.device);
                        owners.len() - 1
                    }
                };
                naive.place(a.arrival, a.occupancy, owner)
            })
            .collect();

        assert_eq!(
            fabric_queues, naive_queues,
            "case {case}: single-channel fabric diverged from the reference"
        );
    }
}

/// Invariant 4: whatever the queue depths, *what* is accounted never
/// changes — grants, bytes and occupancy are conserved — and the new
/// stall/peak statistics keep the per-channel rows summing (stalls) or
/// bounding (peaks) the per-initiator totals.
#[test]
fn finite_depths_conserve_stats_and_channel_sums() {
    let mut rng = DeterministicRng::new(0x0F11_7E57);
    for case in 0..10 {
        let mut case_rng = rng.fork(case);
        let n = 1 + case_rng.next_below(120) as usize;
        let accesses = random_accesses(&mut case_rng, n);
        let mut reference: Option<(u64, u64, u64)> = None;
        for depth in [1usize, 2, 4, 8, usize::MAX] {
            let mut fabric = Fabric::new(FabricConfig {
                channels: DramChannelConfig::interleaved(2),
                ..bounded_config(depth)
            });
            let split = drive_split(&mut fabric, &accesses);
            let total = fabric.total();
            let per_channel = fabric.channel_stats();

            // Conservation of the functional accounting across depths.
            let key = (total.bytes, total.occupancy_cycles, total.accesses());
            match reference {
                None => reference = Some(key),
                Some(k) => assert_eq!(k, key, "case {case}, depth {depth}"),
            }

            // Per-access outcomes sum to the per-initiator statistics...
            assert_eq!(
                split.iter().map(|&(q, _)| q).sum::<u64>(),
                total.queue_cycles,
                "case {case}, depth {depth}: queue sums"
            );
            assert_eq!(
                split.iter().map(|&(_, s)| s).sum::<u64>(),
                total.issue_stall_cycles,
                "case {case}, depth {depth}: stall sums"
            );
            // ...and the per-channel rows sum to the fabric totals.
            assert_eq!(
                per_channel.iter().map(|c| c.queue_cycles).sum::<u64>(),
                total.queue_cycles
            );
            assert_eq!(
                per_channel
                    .iter()
                    .map(|c| c.issue_stall_cycles)
                    .sum::<u64>(),
                total.issue_stall_cycles
            );
            // Peaks respect the configured depth, and the per-initiator
            // peaks never exceed the channel peaks.
            if depth != usize::MAX {
                for c in &per_channel {
                    assert!(c.req_queue_peak as usize <= depth);
                    assert!(c.rsp_queue_peak as usize <= depth);
                }
                let ch_req_peak = per_channel.iter().map(|c| c.req_queue_peak).max().unwrap();
                for snap in fabric.snapshot() {
                    assert!(snap.stats.req_queue_peak <= ch_req_peak);
                }
            } else {
                assert_eq!(total.issue_stall_cycles, 0, "inf depths never stall");
            }
        }
    }
}

/// Invariant 5: shallower queues never reduce total cycles — per access,
/// the total delay (issue stall + queueing) under a shallower queue is at
/// least the delay the unbounded fabric measured, and the totals are
/// monotone along the depth ladder.
#[test]
fn shallower_queues_never_reduce_total_cycles() {
    let mut rng = DeterministicRng::new(0x005A_1107);
    for case in 0..10 {
        let mut case_rng = rng.fork(case);
        let n = 1 + case_rng.next_below(100) as usize;
        let accesses = random_accesses(&mut case_rng, n);
        let mut prev_total: Option<u64> = None;
        // Deep to shallow: total delay must not decrease.
        for depth in [usize::MAX, 8, 4, 2, 1] {
            let mut fabric = Fabric::new(bounded_config(depth));
            let split = drive_split(&mut fabric, &accesses);
            let total: u64 = split.iter().map(|&(q, s)| q + s).sum();
            if let Some(prev) = prev_total {
                assert!(
                    total >= prev,
                    "case {case}: depth {depth} reduced total delay ({total} < {prev})"
                );
            }
            prev_total = Some(total);
        }
    }
}

/// Invariant 6: unbounded depths — and any finite depth the traffic never
/// fills — are cycle- and stall-identical to the pure reservation fabric
/// (the PR 3 engine): same queue delays, zero stalls.
#[test]
fn unbounded_depth_is_cycle_identical_to_the_reservation_fabric() {
    let mut rng = DeterministicRng::new(0x01DE_1717);
    for case in 0..12 {
        let mut case_rng = rng.fork(case);
        let n = 1 + case_rng.next_below(120) as usize;
        let accesses = random_accesses(&mut case_rng, n);

        let mut reference = Fabric::default();
        let ref_queues = drive(&mut reference, &accesses);

        // Explicit unbounded depths: the queue machinery is skipped.
        let mut unbounded = Fabric::new(bounded_config(usize::MAX));
        let unbounded_split = drive_split(&mut unbounded, &accesses);
        assert_eq!(
            unbounded_split.iter().map(|&(q, _)| q).collect::<Vec<_>>(),
            ref_queues,
            "case {case}: unbounded depths diverged from the reservation fabric"
        );
        assert!(unbounded_split.iter().all(|&(_, s)| s == 0));

        // A finite depth deeper than the whole access count: the queues can
        // never fill, so the split-transaction flow is cycle-identical too.
        let mut deep = Fabric::new(bounded_config(n + 1));
        let deep_split = drive_split(&mut deep, &accesses);
        assert_eq!(
            deep_split.iter().map(|&(q, _)| q).collect::<Vec<_>>(),
            ref_queues,
            "case {case}: never-full finite queues diverged"
        );
        assert!(deep_split.iter().all(|&(_, s)| s == 0));
        assert_eq!(deep.total().queue_cycles, reference.total().queue_cycles);
    }
}
