//! Cross-crate integration tests: every kernel, every platform variant,
//! every offload flow, verified against the host reference.

use sva::kernels::{AxpyWorkload, GesummvWorkload, KernelKind};
use sva::soc::config::{PlatformConfig, SocVariant};
use sva::soc::offload::{OffloadMode, OffloadRunner};
use sva::soc::platform::Platform;

/// Every kernel of the suite runs correctly on the accelerator, on every
/// platform variant, at a reduced problem size.
#[test]
fn every_kernel_verifies_on_every_variant() {
    for kind in KernelKind::ALL {
        let workload = kind.small_workload();
        for variant in SocVariant::ALL {
            let mut platform =
                Platform::new(PlatformConfig::variant(variant, 600)).expect("platform boots");
            let report = OffloadRunner::new(0xE2E)
                .run_device_only(&mut platform, workload.as_ref())
                .expect("device run succeeds");
            assert!(
                report.verified,
                "{:?} on {:?} must match the host reference",
                kind, variant
            );
            assert!(report.stats.total.raw() > 0);
        }
    }
}

/// The three offload flows all produce correct results and consistent
/// breakdowns for a mid-sized axpy.
#[test]
fn offload_flows_are_consistent() {
    let workload = AxpyWorkload::with_elems(12_288);
    for mode in [
        OffloadMode::HostOnly,
        OffloadMode::CopyOffload,
        OffloadMode::ZeroCopy,
    ] {
        let mut platform =
            Platform::new(PlatformConfig::iommu_with_llc(600)).expect("platform boots");
        let report = OffloadRunner::new(99)
            .run(&mut platform, &workload, mode)
            .expect("offload succeeds");
        assert!(report.verified, "{mode:?}");
        // The total is never smaller than its parts.
        let parts = report.copy_or_map + report.offload_overhead + report.device_total();
        assert!(report.total >= report.device_total());
        assert!(report.total >= parts || report.device.is_none());
    }
}

/// Enabling the IOMMU without an LLC slows the accelerator down; adding the
/// LLC recovers almost all of it (the paper's central claim).
#[test]
fn llc_recovers_iommu_overhead() {
    let workload = GesummvWorkload::with_dim(256);
    let mut totals = Vec::new();
    for variant in SocVariant::ALL {
        let mut platform =
            Platform::new(PlatformConfig::variant(variant, 1000)).expect("platform boots");
        let report = OffloadRunner::new(5)
            .run_device_only(&mut platform, &workload)
            .expect("device run succeeds");
        totals.push((variant, report.stats.total.raw()));
    }
    let get = |v: SocVariant| totals.iter().find(|(x, _)| *x == v).unwrap().1 as f64;
    let baseline = get(SocVariant::Baseline);
    let iommu = get(SocVariant::Iommu);
    let iommu_llc = get(SocVariant::IommuLlc);

    assert!(
        iommu > baseline * 1.05,
        "IOMMU without LLC should cost more than 5% at 1000 cycles (got {:.1}%)",
        (iommu / baseline - 1.0) * 100.0
    );
    assert!(
        iommu_llc < baseline * 1.05,
        "IOMMU+LLC should stay within 5% of the baseline (got {:.1}%)",
        (iommu_llc / baseline - 1.0) * 100.0
    );
    assert!(iommu_llc < iommu);
}

/// Total runtime grows monotonically with DRAM latency on every variant.
#[test]
fn runtime_grows_with_dram_latency() {
    let workload = KernelKind::Heat3d.small_workload();
    for variant in SocVariant::ALL {
        let mut previous = 0u64;
        for latency in [200u64, 600, 1000] {
            let mut platform =
                Platform::new(PlatformConfig::variant(variant, latency)).expect("platform boots");
            let report = OffloadRunner::new(17)
                .run_device_only(&mut platform, workload.as_ref())
                .expect("device run succeeds");
            assert!(
                report.stats.total.raw() >= previous,
                "{variant:?}: runtime must not shrink when latency grows"
            );
            previous = report.stats.total.raw();
        }
    }
}

/// Device results are bit-identical across repeated runs with the same seed
/// (the simulation is deterministic).
#[test]
fn simulation_is_deterministic() {
    let workload = KernelKind::Gemm.small_workload();
    let run = || {
        let mut platform =
            Platform::new(PlatformConfig::iommu_with_llc(600)).expect("platform boots");
        let report = OffloadRunner::new(123)
            .run_device_only(&mut platform, workload.as_ref())
            .expect("device run succeeds");
        (
            report.stats.total.raw(),
            report.stats.dma_wait.raw(),
            report.iommu.ptw_walks,
        )
    };
    assert_eq!(run(), run());
}

/// The IOMMU's translation statistics line up with the DMA traffic: every
/// page the DMA engine touches shows up as at least one IOTLB access.
#[test]
fn translation_counts_match_dma_traffic() {
    let workload = AxpyWorkload::with_elems(16_384);
    let mut platform = Platform::new(PlatformConfig::iommu_with_llc(200)).expect("platform boots");
    let report = OffloadRunner::new(3)
        .run_device_only(&mut platform, &workload)
        .expect("device run succeeds");
    let stats = report.iommu;
    assert!(stats.translations > 0);
    assert_eq!(stats.iotlb.total(), stats.translations - stats.bypassed);
    // axpy reads x and y and writes y: 3 * 16 pages of traffic, each burst of
    // a new page needs a walk or an IOTLB hit.
    assert!(stats.iotlb.total() >= 3 * 16);
}
