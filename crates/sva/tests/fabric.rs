//! Integration tests of the unified memory fabric and the N-cluster
//! platform: stat-sum invariants, single-cluster cycle identity with the
//! pre-refactor execution path, and IOTLB behaviour under multi-device
//! interleaving.

use sva::cluster::{ClusterConfig, ClusterExecutor};
use sva::common::rng::DeterministicRng;
use sva::common::{Cycles, InitiatorId, Iova, PhysAddr, PAGE_SIZE};
use sva::iommu::{Iommu, IommuConfig};
use sva::mem::{MemReq, MemSysConfig, MemorySystem};
use sva::soc::config::PlatformConfig;
use sva::soc::offload::OffloadRunner;
use sva::soc::platform::Platform;
use sva::vm::{AddressSpace, FrameAllocator};

const DRAM_BASE: u64 = 0x8000_0000;

/// Property: per-initiator fabric statistics always sum to the global
/// `MemSysStats`, for arbitrary interleavings of host, PTW and multi-device
/// DMA traffic.
#[test]
fn per_initiator_stats_sum_to_global() {
    let mut rng = DeterministicRng::new(0xFAB51);
    for case in 0..24 {
        let mut case_rng = rng.fork(case);
        let mut mem = MemorySystem::new(MemSysConfig {
            dram_latency: Cycles::new(200),
            ..MemSysConfig::default()
        });
        let ops = 1 + case_rng.next_below(120) as usize;
        for _ in 0..ops {
            let addr = PhysAddr::new(DRAM_BASE + case_rng.next_below(1 << 20) * 64);
            match case_rng.next_below(5) {
                0 => {
                    let mut buf = [0u8; 8];
                    mem.host_read(addr, &mut buf).unwrap();
                }
                1 => {
                    mem.host_write(addr, &[1u8; 8]).unwrap();
                }
                2 => {
                    mem.ptw_read(addr).unwrap();
                }
                _ => {
                    let device = 1 + 2 * case_rng.next_below(4) as u32;
                    let start = Cycles::new(case_rng.next_below(10_000));
                    let mut buf = vec![0u8; 64 * (1 + case_rng.next_below(8)) as usize];
                    mem.access(
                        MemReq::read(InitiatorId::dma(device), addr, &mut buf)
                            .burst()
                            .at(start),
                    )
                    .unwrap();
                }
            }
        }

        let global = *mem.stats();
        let snaps = mem.fabric_stats();
        let sum = |f: &dyn Fn(&sva::common::InitiatorStats) -> u64, class: &str| -> u64 {
            snaps
                .iter()
                .filter(|s| match class {
                    "host" => s.id == InitiatorId::Host,
                    "ptw" => s.id == InitiatorId::Ptw,
                    _ => matches!(s.id, InitiatorId::Dma { .. }),
                })
                .map(|s| f(&s.stats))
                .sum()
        };
        assert_eq!(global.host_accesses, sum(&|s| s.accesses(), "host"));
        assert_eq!(global.ptw_accesses, sum(&|s| s.accesses(), "ptw"));
        assert_eq!(global.dma_bursts, sum(&|s| s.accesses(), "dma"));
        assert_eq!(global.dma_bytes, sum(&|s| s.bytes, "dma"));
        // The fabric's own aggregate agrees with its per-initiator rows.
        let total = mem.fabric().total();
        let all: u64 = snaps.iter().map(|s| s.stats.accesses()).sum();
        assert_eq!(total.accesses(), all);
    }
}

/// The compatibility wrappers and the unified `access` path are the same
/// path: identical sequences produce identical latencies and stats.
#[test]
fn wrapper_and_access_paths_are_cycle_identical() {
    let run = |unified: bool| -> (Vec<u64>, u64) {
        let mut mem = MemorySystem::new(MemSysConfig {
            dram_latency: Cycles::new(600),
            ..MemSysConfig::default()
        });
        let mut latencies = Vec::new();
        for i in 0..32u64 {
            let addr = PhysAddr::new(DRAM_BASE + i * 4096);
            let mut buf = [0u8; 8];
            let lat = if unified {
                mem.access(MemReq::read(InitiatorId::Host, addr, &mut buf))
                    .unwrap()
                    .latency()
                    .raw()
            } else {
                mem.host_read(addr, &mut buf).unwrap().raw()
            };
            latencies.push(lat);
            let (_, ptw) = mem.ptw_read(addr).unwrap();
            latencies.push(ptw.raw());
        }
        (
            latencies,
            mem.stats().host_accesses + mem.stats().ptw_accesses,
        )
    };
    assert_eq!(run(true), run(false));
}

/// A one-cluster platform must execute a kernel cycle-identically to driving
/// the cluster executor directly with the unsharded kernel (the pre-refactor
/// path): sharding with `N = 1` is the identity.
#[test]
fn single_cluster_sharding_is_cycle_identical_to_direct_run() {
    let wl = sva::kernels::GemmWorkload::with_dim(64);

    // Sharded path through the runner.
    let config = PlatformConfig::iommu_with_llc(600).with_clusters(1);
    let mut platform = Platform::new(config).unwrap();
    let sharded = OffloadRunner::new(42)
        .run_device_only(&mut platform, &wl)
        .unwrap();

    // Rebuilt platform, same seed: the N=1 shard must reproduce the run
    // bit-for-bit (TileRange over the whole kernel is the identity; see
    // `tile_range_identity_on_direct_executor` for the executor-level proof).
    let config = PlatformConfig::iommu_with_llc(600).with_clusters(1);
    let mut p2 = Platform::new(config).unwrap();
    let direct = OffloadRunner::new(42)
        .run_device_only(&mut p2, &wl)
        .unwrap();
    assert_eq!(sharded.stats, direct.stats);
    assert_eq!(sharded.per_cluster.len(), 1);
    assert_eq!(sharded.per_cluster[0], sharded.stats);
    assert_eq!(sharded.iommu.translations, direct.iommu.translations);
    assert_eq!(sharded.iommu.iotlb, direct.iommu.iotlb);
}

/// Driving the executor directly (seed semantics) equals the sharded runner
/// on a standalone memory system, for a synthetic kernel.
#[test]
fn tile_range_identity_on_direct_executor() {
    use sva::cluster::{DeviceKernel, DmaRequest, Tcdm, TileIo, TileRange};
    use sva::common::Result;

    struct Stream {
        tiles: usize,
    }
    impl DeviceKernel for Stream {
        fn name(&self) -> &str {
            "stream"
        }
        fn num_tiles(&self) -> usize {
            self.tiles
        }
        fn tile_io(&self, tile: usize) -> TileIo {
            let off = tile as u64 * 2048;
            TileIo {
                inputs: vec![DmaRequest::input(
                    Iova::new(DRAM_BASE + 0x0400_0000 + off),
                    (tile % 2) as u64 * 2048,
                    2048,
                )],
                outputs: vec![],
            }
        }
        fn compute_tile(&mut self, _tile: usize, _tcdm: &mut Tcdm) -> Result<Cycles> {
            Ok(Cycles::new(700))
        }
    }

    let run_direct = |wrap: bool| {
        let mut mem = MemorySystem::default();
        let mut iommu = Iommu::new(IommuConfig::disabled());
        let mut exec = ClusterExecutor::new(ClusterConfig::default());
        if wrap {
            let mut kernel = TileRange::new(Stream { tiles: 8 }, 0, 8);
            exec.run(&mut mem, &mut iommu, &mut kernel).unwrap()
        } else {
            let mut kernel = Stream { tiles: 8 };
            exec.run(&mut mem, &mut iommu, &mut kernel).unwrap()
        }
    };
    assert_eq!(run_direct(true), run_direct(false));
}

/// IOTLB LRU eviction order holds under multi-device interleaving: entries
/// are tagged `(device, page)`, and the least recently used tag is evicted
/// regardless of which device owns it.
#[test]
fn iotlb_lru_order_holds_under_multi_device_interleaving() {
    let mut mem = MemorySystem::default();
    let mut frames = FrameAllocator::linux_pool();
    let mut space = AddressSpace::new(&mut mem, &mut frames).unwrap();
    let va = space
        .alloc_buffer(&mut mem, &mut frames, 8 * PAGE_SIZE)
        .unwrap();
    let mut iommu = Iommu::new(IommuConfig::default());
    for device in [1u32, 3] {
        iommu
            .attach_device(&mut mem, &mut frames, device, space.pscid(), space.root())
            .unwrap();
    }
    let page = |p: u64| Iova::from_virt(va + p * PAGE_SIZE);

    // Fill the 4-entry IOTLB with an interleaved tag set:
    // (1,p0) (3,p0) (1,p1) (3,p1), in that LRU order.
    iommu.translate(&mut mem, 1, page(0), false).unwrap();
    iommu.translate(&mut mem, 3, page(0), false).unwrap();
    iommu.translate(&mut mem, 1, page(1), false).unwrap();
    iommu.translate(&mut mem, 3, page(1), false).unwrap();
    assert_eq!(iommu.iotlb().len(), 4);

    // Touch (1,p0) so (3,p0) becomes LRU, then insert a fifth tag.
    iommu.translate(&mut mem, 1, page(0), false).unwrap();
    iommu.translate(&mut mem, 1, page(2), false).unwrap();

    assert!(iommu.iotlb().probe(1, page(0)), "MRU survives");
    assert!(
        !iommu.iotlb().probe(3, page(0)),
        "LRU tag of device 3 evicted"
    );
    assert!(iommu.iotlb().probe(1, page(1)));
    assert!(iommu.iotlb().probe(3, page(1)));
    assert!(iommu.iotlb().probe(1, page(2)));

    // Interleave again: evictions keep following global LRU, not device
    // ownership. Next LRU is (1,p1).
    iommu.translate(&mut mem, 3, page(2), false).unwrap();
    assert!(!iommu.iotlb().probe(1, page(1)), "(1,p1) was global LRU");
    assert!(
        iommu.iotlb().probe(3, page(1)),
        "(3,p1) more recent, survives"
    );

    // Per-device statistics stayed coherent with the global counters.
    let global = iommu.iotlb().stats();
    let per: u64 = iommu
        .iotlb()
        .per_device_stats()
        .iter()
        .map(|(_, s)| s.total())
        .sum();
    assert_eq!(global.total(), per);
}

/// A device invalidation only drops that device's tags, even when another
/// device maps the same pages.
#[test]
fn device_invalidation_is_scoped_under_shared_pages() {
    let mut mem = MemorySystem::default();
    let mut frames = FrameAllocator::linux_pool();
    let mut space = AddressSpace::new(&mut mem, &mut frames).unwrap();
    let va = space
        .alloc_buffer(&mut mem, &mut frames, 2 * PAGE_SIZE)
        .unwrap();
    let mut iommu = Iommu::new(IommuConfig::default());
    for device in [1u32, 3] {
        iommu
            .attach_device(&mut mem, &mut frames, device, space.pscid(), space.root())
            .unwrap();
    }
    let iova = Iova::from_virt(va);
    iommu.translate(&mut mem, 1, iova, false).unwrap();
    iommu.translate(&mut mem, 3, iova, false).unwrap();

    iommu.process_command(sva::iommu::Command::IotlbInvalidate {
        device_id: Some(1),
        iova: None,
    });
    assert!(!iommu.iotlb().probe(1, iova));
    assert!(iommu.iotlb().probe(3, iova), "device 3 keeps its tag");
}
