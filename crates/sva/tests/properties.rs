//! Property-based tests of the core data structures and invariants.
//!
//! The build environment is offline, so instead of `proptest` these
//! properties are driven by the workspace's own [`DeterministicRng`]: each
//! property runs a fixed number of randomised cases from a fixed seed, which
//! keeps failures reproducible run-to-run.

use sva::axi::BurstPlan;
use sva::common::rng::DeterministicRng;
use sva::common::{Iova, PhysAddr, VirtAddr, PAGE_SIZE};
use sva::iommu::{Iommu, IommuConfig};
use sva::mem::{MemorySystem, SparseMemory};
use sva::vm::{AddressSpace, FrameAllocator, PageTable, PteFlags};

/// Runs `f` for `cases` deterministic random cases derived from `seed`.
fn check<F: FnMut(&mut DeterministicRng)>(seed: u64, cases: usize, mut f: F) {
    let mut rng = DeterministicRng::new(seed);
    for case in 0..cases {
        let mut case_rng = rng.fork(case as u64);
        f(&mut case_rng);
    }
}

/// Burst plans cover exactly the requested bytes, never cross 4 KiB
/// boundaries and never exceed the maximum burst size.
#[test]
fn burst_plan_invariants() {
    check(0xB0057, 256, |rng| {
        let addr = rng.next_below(0x1_0000_0000);
        let len = rng.next_below(200_000);
        let max_burst = [256u64, 1024, 2048, 4096][rng.next_below(4) as usize];

        let plan = BurstPlan::split(PhysAddr::new(addr), len, max_burst);
        assert_eq!(plan.total_bytes(), len);
        let mut expected_next = PhysAddr::new(addr);
        for burst in plan.bursts() {
            assert!(burst.len > 0);
            assert!(burst.len <= max_burst);
            // Contiguous, in order.
            assert_eq!(burst.addr, expected_next);
            expected_next = burst.end();
            // Never crosses a page boundary.
            assert_eq!(burst.addr.page_number(), (burst.end() - 1u64).page_number());
        }
        if len > 0 {
            assert!(plan.pages_touched() >= 1);
        }
    });
}

/// Sparse memory behaves like a flat byte array.
#[test]
fn sparse_memory_matches_flat_model() {
    check(0x5AA, 64, |rng| {
        let mut mem = SparseMemory::new(1 << 16);
        let mut model = vec![0u8; 1 << 16];
        let writes = 1 + rng.next_below(19) as usize;
        for _ in 0..writes {
            let offset = rng.next_below(60_000);
            let len = 1 + rng.next_below(199) as usize;
            let data: Vec<u8> = (0..len).map(|_| rng.next_below(256) as u8).collect();
            if offset as usize + data.len() <= model.len() {
                mem.write(offset, &data).unwrap();
                model[offset as usize..offset as usize + data.len()].copy_from_slice(&data);
            }
        }
        let mut out = vec![0u8; model.len()];
        mem.read(0, &mut out).unwrap();
        assert_eq!(out, model);
    });
}

/// Mapping pages and translating them through the page table is the identity
/// on (page, offset) pairs, and unmapped pages always fault.
#[test]
fn page_table_roundtrip() {
    check(0x9A6E, 24, |rng| {
        let mut mem = MemorySystem::default();
        let mut frames = FrameAllocator::linux_pool();
        let pt = PageTable::create(&mut frames).unwrap();
        let base = VirtAddr::new(0x4000_0000);
        let offset = rng.next_below(PAGE_SIZE);
        let n_pages = 1 + rng.next_below(23) as usize;
        let mut pages: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        while pages.len() < n_pages {
            pages.insert(rng.next_below(512));
        }
        let mut mapping = Vec::new();
        for &p in &pages {
            let pa = frames.alloc_frame().unwrap();
            pt.map_page(
                &mut mem,
                &mut frames,
                base + p * PAGE_SIZE,
                pa,
                PteFlags::user_rw(),
            )
            .unwrap();
            mapping.push((p, pa));
        }
        for (p, pa) in mapping {
            let got = pt.translate(&mem, base + p * PAGE_SIZE + offset).unwrap();
            assert_eq!(got, pa + offset);
        }
        // A page index outside the mapped set faults.
        let unmapped = (0..1024u64).find(|p| !pages.contains(p)).unwrap();
        assert!(pt.translate(&mem, base + unmapped * PAGE_SIZE).is_err());
    });
}

/// The IOMMU translation agrees with the process page table for every offset
/// of a mapped buffer, regardless of the access pattern.
#[test]
fn iommu_matches_software_walk() {
    check(0x1077, 24, |rng| {
        let mut mem = MemorySystem::default();
        let mut frames = FrameAllocator::linux_pool();
        let mut space = AddressSpace::new(&mut mem, &mut frames).unwrap();
        let va = space
            .alloc_buffer(&mut mem, &mut frames, 8 * PAGE_SIZE)
            .unwrap();
        let mut iommu = Iommu::new(IommuConfig::default());
        iommu
            .attach_device(&mut mem, &mut frames, 1, space.pscid(), space.root())
            .unwrap();
        let n_offsets = 1 + rng.next_below(39) as usize;
        for _ in 0..n_offsets {
            let off = rng.next_below(8 * PAGE_SIZE);
            let iova = Iova::from_virt(va + off);
            let (pa, cycles) = iommu.translate(&mut mem, 1, iova, false).unwrap();
            assert_eq!(pa, space.translate(&mem, va + off).unwrap());
            assert!(cycles.raw() > 0);
        }
        let stats = iommu.stats();
        assert_eq!(stats.iotlb.total(), stats.translations);
        assert!(stats.ptw_walks as usize <= 8usize.max(stats.iotlb.misses as usize));
    });
}

/// The IOTLB never grows beyond its capacity and always serves hits for the
/// most recently used page.
#[test]
fn iotlb_capacity_and_mru() {
    check(0x71B, 16, |rng| {
        let mut mem = MemorySystem::default();
        let mut frames = FrameAllocator::linux_pool();
        let mut space = AddressSpace::new(&mut mem, &mut frames).unwrap();
        let va = space
            .alloc_buffer(&mut mem, &mut frames, 64 * PAGE_SIZE)
            .unwrap();
        let mut iommu = Iommu::new(IommuConfig::default());
        iommu
            .attach_device(&mut mem, &mut frames, 1, space.pscid(), space.root())
            .unwrap();

        let n = 1 + rng.next_below(99) as usize;
        for _ in 0..n {
            let p = rng.next_below(64);
            let iova = Iova::from_virt(va + p * PAGE_SIZE);
            iommu.translate(&mut mem, 1, iova, false).unwrap();
            assert!(iommu.iotlb().len() <= 4);
            // Immediately repeating the same page is always an IOTLB hit.
            let before = iommu.stats().iotlb.hits;
            iommu.translate(&mut mem, 1, iova, false).unwrap();
            assert_eq!(iommu.stats().iotlb.hits, before + 1);
        }
    });
}

/// Functional correctness of the device axpy for arbitrary problem sizes
/// (not just the paper's power-of-two sizes).
#[test]
fn device_axpy_matches_reference_for_odd_sizes() {
    use sva::kernels::AxpyWorkload;
    use sva::soc::config::PlatformConfig;
    use sva::soc::offload::{OffloadMode, OffloadRunner};
    use sva::soc::platform::Platform;

    check(0xA4B, 8, |rng| {
        let n = 1 + rng.next_below(5_999) as usize;
        let workload = AxpyWorkload::with_elems(n);
        let mut platform = Platform::new(PlatformConfig::iommu_with_llc(200)).unwrap();
        let report = OffloadRunner::new(n as u64)
            .run(&mut platform, &workload, OffloadMode::ZeroCopy)
            .unwrap();
        assert!(report.verified);
    });
}
