//! Compare the three offload flows of Figure 2 on the paper's axpy problem.
//!
//! ```text
//! cargo run --release --example zero_copy_vs_copy
//! ```
//!
//! Runs `axpy` with 32 768 elements per vector (the paper's size) three ways
//! — on the host, with copy-based offloading and with zero-copy (SVA)
//! offloading — and prints the stacked-bar breakdown plus the zero-copy
//! speed-up headline.

use sva::kernels::AxpyWorkload;
use sva::soc::config::PlatformConfig;
use sva::soc::offload::{OffloadMode, OffloadRunner};
use sva::soc::platform::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = AxpyWorkload::paper();
    println!(
        "axpy, {} elements per vector, DRAM latency 200 cycles\n",
        workload.n
    );
    println!(
        "{:<38} {:>12} {:>12} {:>12} {:>12}",
        "scenario", "copy/map", "overhead", "compute", "total"
    );

    let mut totals = Vec::new();
    for mode in [
        OffloadMode::HostOnly,
        OffloadMode::CopyOffload,
        OffloadMode::ZeroCopy,
    ] {
        // A fresh platform per scenario keeps cache state comparable.
        let mut platform = Platform::new(PlatformConfig::iommu_with_llc(200))?;
        let report = OffloadRunner::new(7).run(&mut platform, &workload, mode)?;
        let compute = report
            .device
            .map(|d| d.total.raw())
            .or(report.host.map(|h| h.total.raw()))
            .unwrap_or(0);
        println!(
            "{:<38} {:>12} {:>12} {:>12} {:>12}",
            mode.label(),
            report.copy_or_map.raw(),
            report.offload_overhead.raw(),
            compute,
            report.total.raw()
        );
        assert!(
            report.verified,
            "all three flows must produce correct results"
        );
        totals.push((mode, report.total.raw()));
    }

    let copy = totals
        .iter()
        .find(|(m, _)| *m == OffloadMode::CopyOffload)
        .expect("copy case present")
        .1;
    let zero = totals
        .iter()
        .find(|(m, _)| *m == OffloadMode::ZeroCopy)
        .expect("zero-copy case present")
        .1;
    println!(
        "\nzero-copy offloading is {:.0}% faster than copy-based offloading (paper: 47%)",
        (1.0 - zero as f64 / copy as f64) * 100.0
    );
    Ok(())
}
