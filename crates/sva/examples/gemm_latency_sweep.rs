//! Sweep DRAM latency and platform variant for the gemm kernel (one row of
//! Table II).
//!
//! ```text
//! cargo run --release --example gemm_latency_sweep
//! ```
//!
//! For each DRAM latency (200 / 600 / 1000 cycles) the example measures the
//! accelerator-only runtime of a 128 × 128 gemm on the three platform
//! variants and prints the runtime, the DMA share and the IOMMU overhead
//! relative to the baseline.

use sva::kernels::{GemmWorkload, Workload};
use sva::soc::config::{PlatformConfig, SocVariant, PAPER_LATENCIES};
use sva::soc::offload::OffloadRunner;
use sva::soc::platform::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = GemmWorkload::paper();
    println!("gemm {}, accelerator runtime only\n", workload.params());
    println!(
        "{:>8} {:>12} {:>14} {:>10} {:>12}",
        "latency", "config", "cycles", "%DMA", "overhead"
    );

    for latency in PAPER_LATENCIES {
        let mut baseline_total = None;
        for variant in SocVariant::ALL {
            let mut platform = Platform::new(PlatformConfig::variant(variant, latency))?;
            let report = OffloadRunner::new(1).run_device_only(&mut platform, &workload)?;
            assert!(report.verified, "device gemm must match the host reference");
            let total = report.stats.total.raw();
            let overhead = match baseline_total {
                None => {
                    baseline_total = Some(total);
                    "-".to_string()
                }
                Some(base) => format!("{:+.1}%", (total as f64 / base as f64 - 1.0) * 100.0),
            };
            println!(
                "{:>8} {:>12} {:>14} {:>9.1}% {:>12}",
                latency,
                variant.label(),
                total,
                report.stats.dma_fraction() * 100.0,
                overhead
            );
        }
        println!();
    }
    Ok(())
}
