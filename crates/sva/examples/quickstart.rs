//! Quickstart: boot the prototype platform and run one zero-copy offload.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's full platform (CVA6 host + RISC-V IOMMU + shared LLC +
//! Snitch cluster) at 200 cycles of DRAM latency, offloads a small `axpy`
//! with shared virtual addressing and prints the resulting breakdown.

use sva::kernels::AxpyWorkload;
use sva::soc::config::PlatformConfig;
use sva::soc::offload::{OffloadMode, OffloadRunner};
use sva::soc::platform::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the platform of Figure 1 (IOMMU + LLC variant).
    let config = PlatformConfig::iommu_with_llc(200);
    let mut platform = Platform::new(config)?;

    // 2. Describe the workload: y = a*x + y over 16 Ki elements.
    let workload = AxpyWorkload::with_elems(16_384);

    // 3. Run it as a zero-copy offload (Listing 1 of the paper: flush caches,
    //    map the buffers through the IOMMU, run the cluster on IOVAs).
    let report = OffloadRunner::new(42).run(&mut platform, &workload, OffloadMode::ZeroCopy)?;

    println!("kernel          : {}", report.kernel);
    println!("mode            : {}", report.mode.label());
    println!("map cycles      : {}", report.copy_or_map);
    println!("offload overhead: {}", report.offload_overhead);
    if let Some(device) = report.device {
        println!(
            "device          : {} total ({} compute, {} waiting for DMA, {:.1}% DMA)",
            device.total,
            device.compute,
            device.dma_wait,
            device.dma_fraction() * 100.0
        );
    }
    println!("unmap cycles    : {}", report.unmap);
    println!("total           : {}", report.total);
    println!("IOTLB           : {}", report.iommu.iotlb);
    println!(
        "PTW walks       : {} (avg {:.1} cycles)",
        report.iommu.ptw_walks,
        report.iommu.ptw_time.mean()
    );
    println!("results verified: {}", report.verified);
    Ok(())
}
