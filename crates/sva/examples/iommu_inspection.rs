//! Drive the IOMMU model directly: map pages, watch the IOTLB and the
//! page-table walker at work, and trigger an IO page fault.
//!
//! ```text
//! cargo run --release --example iommu_inspection
//! ```
//!
//! This example skips the offload runtime and uses the subsystem crates
//! directly — useful when extending the IOMMU model or studying how the
//! shared LLC changes the walker's latency.

use sva::common::{Cycles, Iova, PAGE_SIZE};
use sva::iommu::{Command, Iommu, IommuConfig};
use sva::mem::{MemSysConfig, MemorySystem};
use sva::vm::{AddressSpace, FrameAllocator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A memory system at 600 cycles of DRAM latency, with the shared LLC.
    let mut mem = MemorySystem::new(MemSysConfig {
        dram_latency: Cycles::new(600),
        llc_enabled: true,
        ..MemSysConfig::default()
    });

    // A user process with an 8-page buffer.
    let mut frames = FrameAllocator::linux_pool();
    let mut space = AddressSpace::new(&mut mem, &mut frames)?;
    let va = space.alloc_buffer(&mut mem, &mut frames, 8 * PAGE_SIZE)?;
    println!("user buffer at {va} backed by scattered physical pages:");
    for page in 0..8u64 {
        let pa = space.translate(&mem, va + page * PAGE_SIZE)?;
        println!(
            "  page {page}: {va_page} -> {pa}",
            va_page = va + page * PAGE_SIZE
        );
    }

    // Attach the accelerator (device id 1) to the process page table.
    let mut iommu = Iommu::new(IommuConfig::default());
    iommu.attach_device(&mut mem, &mut frames, 1, space.pscid(), space.root())?;

    // Translate every page twice: the first access walks the tables, the
    // second hits the 4-entry IOTLB (as long as it has not been evicted).
    println!("\ntranslations (device id 1):");
    for pass in 0..2 {
        for page in 0..8u64 {
            let iova = Iova::from_virt(va + page * PAGE_SIZE);
            let (pa, cycles) = iommu.translate(&mut mem, 1, iova, false)?;
            println!("  pass {pass} page {page}: {iova} -> {pa} in {cycles}");
        }
    }
    let stats = iommu.stats();
    println!("\nIOTLB: {}", stats.iotlb);
    println!(
        "page-table walks: {} (average {:.1} cycles, min {:?}, max {:?})",
        stats.ptw_walks,
        stats.ptw_time.mean(),
        stats.ptw_time.min(),
        stats.ptw_time.max()
    );

    // Invalidate the IOTLB the way the driver does after changing mappings.
    iommu.process_command(Command::IotlbInvalidate {
        device_id: Some(1),
        iova: None,
    });
    println!("\nafter IOTINVAL.VMA the next access walks the tables again:");
    let (_, cycles) = iommu.translate(&mut mem, 1, Iova::from_virt(va), false)?;
    println!("  re-walk took {cycles}");

    // Accessing an unmapped IOVA raises an IO page fault and lands in the
    // fault queue, like the real fault-reporting path.
    let bad = Iova::new(0x7000_0000);
    match iommu.translate(&mut mem, 1, bad, true) {
        Err(e) => println!("\naccess to unmapped {bad} failed as expected: {e}"),
        Ok(_) => unreachable!("unmapped access must fault"),
    }
    if let Some(fault) = iommu.pop_fault() {
        println!(
            "fault record: device {} iova {} write={} reason {:?}",
            fault.device_id, fault.iova, fault.is_write, fault.reason
        );
    }
    Ok(())
}
