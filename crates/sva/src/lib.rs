//! Facade crate for the RISC-V shared-virtual-addressing (SVA) reproduction.
//!
//! This crate re-exports the public API of the workspace so that examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`soc`] — the platform builder, offload runtime and experiment runners
//!   (the paper's primary contribution).
//! * [`kernels`] — the RajaPERF benchmark subset (axpy, gemm, gesummv,
//!   heat3d, merge sort).
//! * [`iommu`], [`cluster`], [`host`], [`mem`], [`axi`], [`vm`], [`common`] —
//!   the individual subsystems for users who want to assemble custom
//!   platforms.
//!
//! See the repository README for a quickstart and `DESIGN.md` for the
//! system inventory.

pub use sva_axi as axi;
pub use sva_cluster as cluster;
pub use sva_common as common;
pub use sva_host as host;
pub use sva_iommu as iommu;
pub use sva_kernels as kernels;
pub use sva_mem as mem;
pub use sva_soc as soc;
pub use sva_vm as vm;

pub use sva_common::prelude;
