//! The host-side open-loop serving front-end: bounded admission plus a
//! pluggable dispatcher.
//!
//! In a production SoC the serving runtime is host software: requests from
//! many tenants arrive on their own schedule, a bounded admission queue
//! absorbs what it can (and **visibly rejects** the rest — overflow is a
//! counted outcome, never silent loss), and a dispatch policy decides which
//! admitted request the next free accelerator cluster runs. This module is
//! that runtime component, deliberately free of timing simulation: the
//! timed discrete-event loop lives in the SoC crate and drives this state
//! machine with explicit `now` values on the shared clock timeline.
//!
//! The dispatch vocabulary mirrors the fabric's
//! [`ArbitrationPolicy`](sva_common::ArbitrationPolicy): round-robin-like
//! FCFS, weight/affinity-style static sharding, load-adaptive
//! shortest-queue, and strict priority.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use sva_common::Cycles;

/// One tenant of the serving layer (a host process class issuing offload
/// requests).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tenant {
    /// Display name for reports ("tenant-a").
    pub name: String,
    /// Dispatch priority; larger wins under [`DispatchPolicy::Priority`].
    pub priority: u8,
}

/// One open-loop offload request, tagged with its tenant.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServingRequest {
    /// Monotone request ID (trace order).
    pub id: u64,
    /// Index into the tenant table.
    pub tenant: usize,
    /// Arrival time on the shared clock.
    pub arrival: Cycles,
    /// Service demand (end-to-end offload cost on one cluster).
    pub service: Cycles,
}

/// How the next free cluster picks among admitted requests.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// Tenant-affine static sharding: tenant `i` only ever runs on cluster
    /// `i mod clusters` (placement decided at admission).
    StaticSharding,
    /// One shared FIFO: any free cluster takes the head.
    Fcfs,
    /// Join-the-shortest-queue: an admitted request is routed to the
    /// cluster with the fewest waiting requests (ties to the lowest
    /// cluster index).
    ShortestQueue,
    /// One shared queue; a free cluster takes the highest-priority tenant's
    /// oldest request.
    Priority,
}

impl DispatchPolicy {
    /// Every policy, for sweep grids.
    pub const ALL: [DispatchPolicy; 4] = [
        DispatchPolicy::StaticSharding,
        DispatchPolicy::Fcfs,
        DispatchPolicy::ShortestQueue,
        DispatchPolicy::Priority,
    ];

    /// Stable label for tables and JSON output.
    pub const fn label(self) -> &'static str {
        match self {
            DispatchPolicy::StaticSharding => "static_sharding",
            DispatchPolicy::Fcfs => "fcfs",
            DispatchPolicy::ShortestQueue => "shortest_queue",
            DispatchPolicy::Priority => "priority",
        }
    }
}

/// Admission counters, overall and per tenant. `offered = admitted +
/// rejected` always holds; the serving report's conservation invariant
/// builds on these.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionStats {
    /// Requests presented to the admission queue.
    pub offered: u64,
    /// Requests accepted into a queue.
    pub admitted: u64,
    /// Requests dropped at the full admission queue.
    pub rejected: u64,
    /// Per-tenant `offered`, same order as the tenant table.
    pub offered_per_tenant: Vec<u64>,
    /// Per-tenant `rejected`, same order as the tenant table.
    pub rejected_per_tenant: Vec<u64>,
}

/// Bounded admission queue + dispatch policy over `clusters` servers.
///
/// The total number of *waiting* requests (across all internal queues) is
/// bounded by `depth`; a request arriving at the bound is rejected and
/// counted in [`AdmissionStats`]. Requests already dispatched to a cluster
/// do not occupy admission slots.
#[derive(Clone, Debug)]
pub struct Dispatcher {
    policy: DispatchPolicy,
    clusters: usize,
    depth: usize,
    tenants: Vec<Tenant>,
    /// Shared queue (FCFS / priority policies).
    shared: VecDeque<ServingRequest>,
    /// Per-cluster queues (routed policies).
    shards: Vec<VecDeque<ServingRequest>>,
    stats: AdmissionStats,
}

impl Dispatcher {
    /// Creates a dispatcher for `clusters` servers with an admission bound
    /// of `depth` waiting requests.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero or the tenant table is empty.
    pub fn new(
        policy: DispatchPolicy,
        clusters: usize,
        depth: usize,
        tenants: Vec<Tenant>,
    ) -> Self {
        assert!(clusters > 0, "serving needs at least one cluster");
        assert!(!tenants.is_empty(), "serving needs at least one tenant");
        let stats = AdmissionStats {
            offered_per_tenant: vec![0; tenants.len()],
            rejected_per_tenant: vec![0; tenants.len()],
            ..AdmissionStats::default()
        };
        Self {
            policy,
            clusters,
            depth,
            tenants,
            shared: VecDeque::new(),
            shards: vec![VecDeque::new(); clusters],
            stats,
        }
    }

    /// The tenant table.
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// Admission counters so far.
    pub const fn stats(&self) -> &AdmissionStats {
        &self.stats
    }

    /// Number of requests currently waiting (all queues).
    pub fn queued(&self) -> usize {
        self.shared.len() + self.shards.iter().map(VecDeque::len).sum::<usize>()
    }

    /// Presents one request for admission. Returns `true` if it was
    /// queued, `false` if the bound rejected it.
    pub fn admit(&mut self, request: ServingRequest) -> bool {
        self.stats.offered += 1;
        self.stats.offered_per_tenant[request.tenant] += 1;
        if self.queued() >= self.depth {
            self.stats.rejected += 1;
            self.stats.rejected_per_tenant[request.tenant] += 1;
            return false;
        }
        self.stats.admitted += 1;
        match self.policy {
            DispatchPolicy::Fcfs | DispatchPolicy::Priority => self.shared.push_back(request),
            DispatchPolicy::StaticSharding => {
                self.shards[request.tenant % self.clusters].push_back(request);
            }
            DispatchPolicy::ShortestQueue => {
                let target = (0..self.clusters)
                    .min_by_key(|&c| self.shards[c].len())
                    .expect("clusters > 0");
                self.shards[target].push_back(request);
            }
        }
        true
    }

    /// Picks the request the newly free `cluster` should run next, or
    /// `None` if nothing eligible is waiting. (Under routed policies a
    /// free cluster with an empty shard idles even while other shards are
    /// backed up — that head-of-line blocking is the point of comparing
    /// policies.)
    pub fn next_for(&mut self, cluster: usize) -> Option<ServingRequest> {
        match self.policy {
            DispatchPolicy::Fcfs => self.shared.pop_front(),
            DispatchPolicy::Priority => {
                let best = self
                    .shared
                    .iter()
                    .enumerate()
                    .max_by_key(|(i, r)| (self.tenants[r.tenant].priority, std::cmp::Reverse(*i)))
                    .map(|(i, _)| i)?;
                self.shared.remove(best)
            }
            DispatchPolicy::StaticSharding | DispatchPolicy::ShortestQueue => {
                self.shards[cluster].pop_front()
            }
        }
    }

    /// Opens a fresh measurement window: waiting requests are flushed and
    /// every admission counter restarts from zero, exactly like a freshly
    /// built dispatcher. Mirrors `open_measurement_window` on the memory
    /// system — drop counters must not carry over between windows.
    pub fn open_measurement_window(&mut self) {
        self.shared.clear();
        for shard in &mut self.shards {
            shard.clear();
        }
        self.stats = AdmissionStats {
            offered_per_tenant: vec![0; self.tenants.len()],
            rejected_per_tenant: vec![0; self.tenants.len()],
            ..AdmissionStats::default()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenants(n: usize) -> Vec<Tenant> {
        (0..n)
            .map(|i| Tenant {
                name: format!("tenant-{i}"),
                priority: i as u8,
            })
            .collect()
    }

    fn req(id: u64, tenant: usize) -> ServingRequest {
        ServingRequest {
            id,
            tenant,
            arrival: Cycles::new(id * 10),
            service: Cycles::new(1_000),
        }
    }

    #[test]
    fn admission_bound_rejects_and_counts_per_tenant() {
        let mut d = Dispatcher::new(DispatchPolicy::Fcfs, 2, 3, tenants(2));
        for i in 0..5u64 {
            d.admit(req(i, (i % 2) as usize));
        }
        let s = d.stats();
        assert_eq!((s.offered, s.admitted, s.rejected), (5, 3, 2));
        assert_eq!(s.offered_per_tenant, vec![3, 2]);
        assert_eq!(s.rejected_per_tenant, vec![1, 1]);
        assert_eq!(d.queued(), 3);
    }

    #[test]
    fn fcfs_serves_in_arrival_order_priority_reorders() {
        let mut fcfs = Dispatcher::new(DispatchPolicy::Fcfs, 1, 16, tenants(3));
        let mut prio = Dispatcher::new(DispatchPolicy::Priority, 1, 16, tenants(3));
        for (i, t) in [(0u64, 0usize), (1, 2), (2, 1), (3, 2)] {
            fcfs.admit(req(i, t));
            prio.admit(req(i, t));
        }
        let fcfs_ids: Vec<u64> = std::iter::from_fn(|| fcfs.next_for(0))
            .map(|r| r.id)
            .collect();
        assert_eq!(fcfs_ids, vec![0, 1, 2, 3]);
        // Priority: tenant 2 (priority 2) first in FIFO order, then 1, then 0.
        let prio_ids: Vec<u64> = std::iter::from_fn(|| prio.next_for(0))
            .map(|r| r.id)
            .collect();
        assert_eq!(prio_ids, vec![1, 3, 2, 0]);
    }

    #[test]
    fn routed_policies_place_at_admission() {
        let mut stat = Dispatcher::new(DispatchPolicy::StaticSharding, 2, 16, tenants(3));
        for (i, t) in [(0u64, 0usize), (1, 1), (2, 2), (3, 1)] {
            stat.admit(req(i, t));
        }
        // Tenants 0 and 2 shard to cluster 0; tenant 1 to cluster 1.
        assert_eq!(stat.next_for(0).map(|r| r.id), Some(0));
        assert_eq!(stat.next_for(0).map(|r| r.id), Some(2));
        assert_eq!(stat.next_for(0).map(|r| r.id), None);
        assert_eq!(stat.next_for(1).map(|r| r.id), Some(1));

        let mut jsq = Dispatcher::new(DispatchPolicy::ShortestQueue, 2, 16, tenants(1));
        for i in 0..4u64 {
            jsq.admit(req(i, 0));
        }
        // Round-robins across equally short queues: 0→c0, 1→c1, 2→c0, 3→c1.
        assert_eq!(jsq.next_for(0).map(|r| r.id), Some(0));
        assert_eq!(jsq.next_for(1).map(|r| r.id), Some(1));
        assert_eq!(jsq.next_for(0).map(|r| r.id), Some(2));
        assert_eq!(jsq.next_for(1).map(|r| r.id), Some(3));
    }

    /// Satellite regression (per-window drop/stat reset audit): admission
    /// drop counters and queued backlog must not leak into the next
    /// measurement window — a reopened dispatcher behaves exactly like a
    /// fresh one.
    #[test]
    fn measurement_window_resets_admission_drops_and_backlog() {
        let drive = |d: &mut Dispatcher| {
            for i in 0..6u64 {
                d.admit(req(i, (i % 2) as usize));
            }
            (d.stats().clone(), d.queued())
        };
        let mut used = Dispatcher::new(DispatchPolicy::ShortestQueue, 2, 2, tenants(2));
        drive(&mut used);
        assert!(used.stats().rejected > 0, "window 1 must overflow");
        used.open_measurement_window();
        assert_eq!(used.queued(), 0, "backlog carried across the window");
        assert_eq!(
            used.stats(),
            &Dispatcher::new(DispatchPolicy::ShortestQueue, 2, 2, tenants(2))
                .stats()
                .clone()
        );

        // Window 2 on the used dispatcher == window 1 on a fresh one.
        let mut fresh = Dispatcher::new(DispatchPolicy::ShortestQueue, 2, 2, tenants(2));
        assert_eq!(drive(&mut used), drive(&mut fresh));
    }
}
