//! Host memory traffic concurrent with device execution: the timed
//! host-traffic stream of the global-clock engine, plus the legacy
//! statistical interference presets of Figure 5.
//!
//! Section IV-C stresses the shared LLC and system bus with a random memory
//! stream issued from the host while the accelerator runs, and measures an
//! average page-table-walk slowdown of about 20 %. Two models exist:
//!
//! * [`HostTrafficStream`] — the first-class model: a paced stream of
//!   **timed host reads** issued through the fabric port with arrival
//!   timestamps spanning the device's measurement window. With the
//!   global-clock engine on (`FabricConfig::timed_host_ptw`), the stream's
//!   accesses reserve bus occupancy, so DMA bursts and page-table walks
//!   queue behind genuine host traffic (and the stream itself queues behind
//!   DMA occupancy — contention is bidirectional). Streaming through the
//!   cached DRAM window also evicts LLC lines, reproducing the paper's
//!   PTE-eviction effect without a statistical stand-in.
//! * [`InterferenceLevel`] — the legacy presets mapping a qualitative level
//!   to the statistical [`InterferenceConfig`] of `sva_mem::interference`
//!   (M/D/1 queueing delay + random LLC pollution). Kept for Figure 5
//!   reproduction; the timed stream supersedes it for fabric sweeps.

use serde::{Deserialize, Serialize};
use sva_common::{Cycles, GlobalClock, InitiatorId, PhysAddr, Result};
use sva_mem::interference::InterferenceConfig;
use sva_mem::{MemReq, MemorySystem};

/// Configuration of the timed host-traffic stream.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HostTrafficConfig {
    /// Total timed host accesses injected per measurement window.
    pub accesses: u64,
    /// Issue gap between consecutive accesses, in host cycles (the stream's
    /// pacing; `accesses × gap` is the window the stream covers).
    pub gap: Cycles,
    /// Bytes per access (a short read burst; together with `gap` this sets
    /// the stream's duty cycle on the shared data path — the default
    /// reserves 32 of every 48 cycles, a heavy stressor like the paper's
    /// synthetic interference program).
    pub len: u64,
    /// Address stride between consecutive accesses. The default skips ahead
    /// of the previous access so every access touches fresh lines, misses
    /// the LLC and occupies the DRAM data path.
    pub stride: u64,
    /// Size of the streamed window inside cached DRAM (the stream wraps);
    /// larger than the LLC so the misses persist.
    pub region_bytes: u64,
    /// Byte offset of the streamed window from the DRAM base, so the stream
    /// does not overwrite-read the workload's own hot lines more than a
    /// real co-running process would.
    pub region_offset: u64,
}

impl Default for HostTrafficConfig {
    fn default() -> Self {
        Self {
            accesses: 4096,
            gap: Cycles::new(48),
            len: 256,
            stride: 5 * 64,
            region_bytes: 32 * 1024 * 1024,
            region_offset: 256 * 1024 * 1024,
        }
    }
}

impl HostTrafficConfig {
    /// The window of simulated time the stream's arrivals cover.
    pub fn window(&self) -> Cycles {
        self.gap * self.accesses
    }
}

/// Statistics of the stream (fabric-level accounting lives in the
/// per-initiator `host` row of `Fabric::snapshot`).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostTrafficStats {
    /// Accesses issued since the last restart.
    pub issued: u64,
    /// Bytes read.
    pub bytes: u64,
    /// Summed latency the stream observed (including charged queueing).
    pub latency_cycles: u64,
}

/// A paced stream of timed host reads contending on the memory fabric.
///
/// The stream keeps a time cursor on the global clock: every access is
/// stamped `issue = first_issue + i × gap`, so injecting the stream in
/// slices interleaved with the per-cluster DMA shards (the runtime does
/// this) produces bidirectional queueing — early slices reserve bus time
/// the shards queue behind, later slices queue behind the shards'
/// reservations.
#[derive(Clone, Debug)]
pub struct HostTrafficStream {
    config: HostTrafficConfig,
    /// Index of the next access to issue (also the pacing cursor).
    next: u64,
    stats: HostTrafficStats,
}

impl HostTrafficStream {
    /// Creates a stream in its pre-window state.
    pub fn new(config: HostTrafficConfig) -> Self {
        Self {
            config,
            next: 0,
            stats: HostTrafficStats::default(),
        }
    }

    /// The stream's configuration.
    pub const fn config(&self) -> &HostTrafficConfig {
        &self.config
    }

    /// Statistics since the last [`HostTrafficStream::restart`].
    pub const fn stats(&self) -> &HostTrafficStats {
        &self.stats
    }

    /// Rewinds the stream to the start of a new measurement window.
    pub fn restart(&mut self) {
        self.next = 0;
        self.stats = HostTrafficStats::default();
    }

    /// Number of accesses not yet issued in this window.
    pub fn remaining(&self) -> u64 {
        self.config.accesses - self.next
    }

    /// Issues up to `count` paced, timestamped host reads through the
    /// fabric port of `mem`, advancing the global `clock` to the stream's
    /// cursor so later untimed host activity lands after the stream.
    ///
    /// # Errors
    ///
    /// Propagates decode errors from the memory system (none for in-range
    /// configurations).
    pub fn inject(
        &mut self,
        mem: &mut MemorySystem,
        clock: &GlobalClock,
        count: u64,
    ) -> Result<()> {
        let base = sva_axi::addrmap::DRAM_BASE + self.config.region_offset;
        let mut buf = vec![0u8; self.config.len as usize];
        let n = count.min(self.remaining());
        for _ in 0..n {
            let i = self.next;
            let issue = Cycles::new(i * self.config.gap.raw());
            let addr = PhysAddr::new(base + (i * self.config.stride) % self.config.region_bytes);
            let rsp = mem.access(MemReq::read(InitiatorId::Host, addr, &mut buf).at(issue))?;
            self.next += 1;
            self.stats.issued += 1;
            self.stats.bytes += self.config.len;
            self.stats.latency_cycles += rsp.latency().raw();
            clock.advance_to(issue + rsp.latency());
        }
        Ok(())
    }
}

/// Qualitative level of concurrent host memory traffic.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterferenceLevel {
    /// The host is idle while the accelerator runs (the default for every
    /// experiment except Figure 5's interference curves).
    #[default]
    Idle,
    /// The host issues a steady random-access stream (the paper's synthetic
    /// interference program).
    RandomTraffic,
    /// A heavier stream, used for sensitivity analysis beyond the paper.
    Saturating,
}

impl InterferenceLevel {
    /// Converts the level into a memory-system interference configuration;
    /// `None` means no interference is installed.
    pub fn to_config(self, seed: u64) -> Option<InterferenceConfig> {
        match self {
            InterferenceLevel::Idle => None,
            InterferenceLevel::RandomTraffic => Some(InterferenceConfig {
                intensity: 0.35,
                llc_lines_per_access: 0.25,
                seed,
            }),
            InterferenceLevel::Saturating => Some(InterferenceConfig {
                intensity: 0.7,
                llc_lines_per_access: 1.0,
                seed,
            }),
        }
    }

    /// Human-readable label used in experiment reports.
    pub const fn label(self) -> &'static str {
        match self {
            InterferenceLevel::Idle => "host idle",
            InterferenceLevel::RandomTraffic => "host random traffic",
            InterferenceLevel::Saturating => "host saturating traffic",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sva_mem::{FabricConfig, MemSysConfig};

    fn timed_mem() -> MemorySystem {
        MemorySystem::new(MemSysConfig {
            fabric: FabricConfig {
                timed_host_ptw: true,
                ..FabricConfig::default()
            },
            ..MemSysConfig::default()
        })
    }

    #[test]
    fn stream_paces_timestamps_and_reserves_the_bus() {
        let mut mem = timed_mem();
        let clock = GlobalClock::new();
        let cfg = HostTrafficConfig {
            accesses: 32,
            gap: Cycles::new(100),
            ..HostTrafficConfig::default()
        };
        let mut stream = HostTrafficStream::new(cfg);
        stream.inject(&mut mem, &clock, 32).unwrap();
        assert_eq!(stream.stats().issued, 32);
        assert_eq!(stream.remaining(), 0);
        // Paced arrivals: the clock followed the stream's cursor past the
        // last issue point.
        assert!(clock.now() >= Cycles::new(31 * 100));
        // Timed host accesses reserved bus occupancy: a DMA burst arriving
        // inside the window observes queueing behind host traffic.
        let host = mem
            .fabric()
            .initiator_stats(InitiatorId::Host)
            .expect("host row exists");
        assert_eq!(host.reads, 32);
        assert!(host.occupancy_cycles > 0, "stream must reserve occupancy");
    }

    #[test]
    fn stream_restart_rewinds_the_window() {
        let mut mem = timed_mem();
        let clock = GlobalClock::new();
        let mut stream = HostTrafficStream::new(HostTrafficConfig {
            accesses: 10,
            ..HostTrafficConfig::default()
        });
        stream.inject(&mut mem, &clock, 4).unwrap();
        assert_eq!(stream.remaining(), 6);
        stream.inject(&mut mem, &clock, 100).unwrap();
        assert_eq!(stream.remaining(), 0, "inject clamps to the window");
        stream.restart();
        assert_eq!(stream.remaining(), 10);
        assert_eq!(stream.stats().issued, 0);
    }

    #[test]
    fn idle_produces_no_config() {
        assert!(InterferenceLevel::Idle.to_config(1).is_none());
    }

    #[test]
    fn levels_are_ordered_by_intensity() {
        let random = InterferenceLevel::RandomTraffic.to_config(1).unwrap();
        let saturating = InterferenceLevel::Saturating.to_config(1).unwrap();
        assert!(saturating.intensity > random.intensity);
        assert!(saturating.llc_lines_per_access > random.llc_lines_per_access);
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            InterferenceLevel::Idle.label(),
            InterferenceLevel::RandomTraffic.label(),
            InterferenceLevel::Saturating.label(),
        ];
        assert_eq!(
            labels
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            3
        );
    }
}
