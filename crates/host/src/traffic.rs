//! Presets for the synthetic host interference stream of Figure 5.
//!
//! Section IV-C stresses the shared LLC and system bus with a random memory
//! stream issued from the host while the accelerator runs, and measures an
//! average page-table-walk slowdown of about 20 %. The presets here map a
//! qualitative interference level to the [`InterferenceConfig`] consumed by
//! the memory system.

use serde::{Deserialize, Serialize};
use sva_mem::interference::InterferenceConfig;

/// Qualitative level of concurrent host memory traffic.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterferenceLevel {
    /// The host is idle while the accelerator runs (the default for every
    /// experiment except Figure 5's interference curves).
    #[default]
    Idle,
    /// The host issues a steady random-access stream (the paper's synthetic
    /// interference program).
    RandomTraffic,
    /// A heavier stream, used for sensitivity analysis beyond the paper.
    Saturating,
}

impl InterferenceLevel {
    /// Converts the level into a memory-system interference configuration;
    /// `None` means no interference is installed.
    pub fn to_config(self, seed: u64) -> Option<InterferenceConfig> {
        match self {
            InterferenceLevel::Idle => None,
            InterferenceLevel::RandomTraffic => Some(InterferenceConfig {
                intensity: 0.35,
                llc_lines_per_access: 0.25,
                seed,
            }),
            InterferenceLevel::Saturating => Some(InterferenceConfig {
                intensity: 0.7,
                llc_lines_per_access: 1.0,
                seed,
            }),
        }
    }

    /// Human-readable label used in experiment reports.
    pub const fn label(self) -> &'static str {
        match self {
            InterferenceLevel::Idle => "host idle",
            InterferenceLevel::RandomTraffic => "host random traffic",
            InterferenceLevel::Saturating => "host saturating traffic",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_produces_no_config() {
        assert!(InterferenceLevel::Idle.to_config(1).is_none());
    }

    #[test]
    fn levels_are_ordered_by_intensity() {
        let random = InterferenceLevel::RandomTraffic.to_config(1).unwrap();
        let saturating = InterferenceLevel::Saturating.to_config(1).unwrap();
        assert!(saturating.intensity > random.intensity);
        assert!(saturating.llc_lines_per_access > random.llc_lines_per_access);
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            InterferenceLevel::Idle.label(),
            InterferenceLevel::RandomTraffic.label(),
            InterferenceLevel::Saturating.label(),
        ];
        assert_eq!(
            labels
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            3
        );
    }
}
