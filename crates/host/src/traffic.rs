//! Host memory traffic concurrent with device execution: the timed
//! host-traffic stream of the global-clock engine, plus the legacy
//! statistical interference presets of Figure 5.
//!
//! Section IV-C stresses the shared LLC and system bus with a random memory
//! stream issued from the host while the accelerator runs, and measures an
//! average page-table-walk slowdown of about 20 %. Two models exist:
//!
//! * [`HostTrafficStream`] — the first-class model: a paced stream of
//!   **timed host reads** issued through the fabric port with arrival
//!   timestamps spanning the device's measurement window. With the
//!   global-clock engine on (`FabricConfig::timed_host_ptw`), the stream's
//!   accesses reserve bus occupancy, so DMA bursts and page-table walks
//!   queue behind genuine host traffic (and the stream itself queues behind
//!   DMA occupancy — contention is bidirectional). Streaming through the
//!   cached DRAM window also evicts LLC lines, reproducing the paper's
//!   PTE-eviction effect without a statistical stand-in.
//! * [`InterferenceLevel`] — the legacy presets mapping a qualitative level
//!   to the statistical [`InterferenceConfig`] of `sva_mem::interference`
//!   (M/D/1 queueing delay + random LLC pollution). Kept for Figure 5
//!   reproduction; the timed stream supersedes it for fabric sweeps.

use serde::{Deserialize, Serialize};
use sva_common::{Cycles, GlobalClock, InitiatorId, PhysAddr, Result};
use sva_mem::interference::InterferenceConfig;
use sva_mem::{MemReq, MemorySystem};

/// Configuration of the timed host-traffic stream.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HostTrafficConfig {
    /// Total timed host accesses injected per measurement window.
    pub accesses: u64,
    /// Issue gap between consecutive accesses, in host cycles (the stream's
    /// pacing; `accesses × gap` is the window the stream covers).
    pub gap: Cycles,
    /// Bytes per access (a short read burst; together with `gap` this sets
    /// the stream's duty cycle on the shared data path — the default
    /// reserves 32 of every 48 cycles, a heavy stressor like the paper's
    /// synthetic interference program).
    pub len: u64,
    /// Address stride between consecutive accesses. The default skips ahead
    /// of the previous access so every access touches fresh lines, misses
    /// the LLC and occupies the DRAM data path.
    pub stride: u64,
    /// Size of the streamed window inside cached DRAM (the stream wraps);
    /// larger than the LLC so the misses persist.
    pub region_bytes: u64,
    /// Byte offset of the streamed window from the DRAM base, so the stream
    /// does not overwrite-read the workload's own hot lines more than a
    /// real co-running process would.
    pub region_offset: u64,
}

impl Default for HostTrafficConfig {
    fn default() -> Self {
        Self {
            accesses: 4096,
            gap: Cycles::new(48),
            len: 256,
            stride: 5 * 64,
            region_bytes: 32 * 1024 * 1024,
            region_offset: 256 * 1024 * 1024,
        }
    }
}

impl HostTrafficConfig {
    /// The window of simulated time the stream's arrivals cover.
    pub fn window(&self) -> Cycles {
        self.gap * self.accesses
    }
}

/// Which phase of an offload the stream is currently injected into.
///
/// The stream runs during the **device** measurement window (the classic
/// injection point) and, when the runtime extends it there, during the
/// **setup** phase of a full application flow — the copy-in/copy-out of a
/// copy-based offload or the cache-flush + `create_iommu_mapping` sequence
/// of a zero-copy offload. Keeping the accounting split per phase is what
/// makes host *self*-interference (the stream contending with the runtime's
/// own copies and page-table writes) separable from device-phase
/// interference.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficPhase {
    /// Copy/map phases of `OffloadRunner::run` (offload setup/teardown).
    Setup,
    /// The device measurement window (kernel execution).
    #[default]
    Device,
}

/// Per-phase accounting of the stream.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTraffic {
    /// Accesses issued during the phase.
    pub issued: u64,
    /// Cross-initiator queueing the phase's accesses observed on the fabric
    /// (waiting behind DMA/PTW/host occupancy).
    pub queue_cycles: u64,
    /// Issue stalls the phase's accesses observed because the host port's
    /// request queue was full (nonzero only with finite channel depths).
    pub stall_cycles: u64,
}

/// Statistics of the stream (fabric-level accounting lives in the
/// per-initiator `host_stream` row of `Fabric::snapshot`).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostTrafficStats {
    /// Accesses issued since the last statistics reset.
    pub issued: u64,
    /// Bytes read.
    pub bytes: u64,
    /// Summed latency the stream observed (including charged queueing).
    pub latency_cycles: u64,
    /// Issue stalls observed because the host port's request queue was full.
    pub stall_cycles: u64,
    /// Accounting of the accesses injected into offload setup phases
    /// (copy/map), separating host self-interference during offload setup
    /// from device-phase interference.
    pub setup: PhaseTraffic,
    /// Accounting of the accesses injected into device measurement windows.
    pub device: PhaseTraffic,
}

impl HostTrafficStats {
    /// The accounting row of `phase`.
    pub fn phase(&self, phase: TrafficPhase) -> &PhaseTraffic {
        match phase {
            TrafficPhase::Setup => &self.setup,
            TrafficPhase::Device => &self.device,
        }
    }
}

/// A paced stream of timed host reads contending on the memory fabric.
///
/// The stream keeps a time cursor on the global clock: every access is
/// stamped `issue = first_issue + i × gap`, so injecting the stream in
/// slices interleaved with the per-cluster DMA shards (the runtime does
/// this) produces bidirectional queueing — early slices reserve bus time
/// the shards queue behind, later slices queue behind the shards'
/// reservations.
#[derive(Clone, Debug)]
pub struct HostTrafficStream {
    config: HostTrafficConfig,
    /// Index of the next access to issue.
    next: u64,
    /// Issue time of the next access. Normally the pacing grid `i × gap`;
    /// under request-queue backpressure the stream is **closed-loop**: a
    /// new request cannot present until the previous one was admitted into
    /// the channel FIFO, so the cursor is bumped past the admission point
    /// (an open-loop source pumping into a saturated finite queue would
    /// accumulate unbounded stall, which no real master does).
    cursor: Cycles,
    /// Which offload phase the current window's accesses are accounted to.
    phase: TrafficPhase,
    stats: HostTrafficStats,
}

impl HostTrafficStream {
    /// Creates a stream in its pre-window state.
    pub fn new(config: HostTrafficConfig) -> Self {
        Self {
            config,
            next: 0,
            cursor: Cycles::ZERO,
            phase: TrafficPhase::default(),
            stats: HostTrafficStats::default(),
        }
    }

    /// The stream's configuration.
    pub const fn config(&self) -> &HostTrafficConfig {
        &self.config
    }

    /// Statistics since the last [`HostTrafficStream::reset_stats`] (or
    /// [`HostTrafficStream::restart`]).
    pub const fn stats(&self) -> &HostTrafficStats {
        &self.stats
    }

    /// The phase the stream currently accounts its accesses to.
    pub const fn phase(&self) -> TrafficPhase {
        self.phase
    }

    /// Rewinds the pacing cursor to the start of a new measurement window
    /// accounted to `phase`; accumulated statistics survive (a full
    /// application flow spans several windows — setup, device — and the
    /// final report wants all of them).
    pub fn begin_window(&mut self, phase: TrafficPhase) {
        self.next = 0;
        self.cursor = Cycles::ZERO;
        self.phase = phase;
    }

    /// Clears the accumulated statistics (a new run begins).
    pub fn reset_stats(&mut self) {
        self.stats = HostTrafficStats::default();
    }

    /// Rewinds the stream to the start of a new device measurement window
    /// and clears the statistics (the pre-phase behaviour; callers tracking
    /// multi-window flows use [`HostTrafficStream::begin_window`] +
    /// [`HostTrafficStream::reset_stats`] instead).
    pub fn restart(&mut self) {
        self.begin_window(TrafficPhase::Device);
        self.reset_stats();
    }

    /// Number of accesses not yet issued in this window.
    pub fn remaining(&self) -> u64 {
        self.config.accesses - self.next
    }

    /// Issues up to `count` paced, timestamped host reads through the
    /// fabric port of `mem`, advancing the global `clock` to the stream's
    /// cursor so later untimed host activity lands after the stream.
    ///
    /// # Errors
    ///
    /// Propagates decode errors from the memory system (none for in-range
    /// configurations).
    pub fn inject(
        &mut self,
        mem: &mut MemorySystem,
        clock: &GlobalClock,
        count: u64,
    ) -> Result<()> {
        let base = sva_axi::addrmap::DRAM_BASE + self.config.region_offset;
        let mut buf = vec![0u8; self.config.len as usize];
        let n = count.min(self.remaining());
        for _ in 0..n {
            let i = self.next;
            // Paced issue, closed-loop under backpressure: at least `gap`
            // after the previous request entered the channel FIFO, and
            // never before the pacing grid point. With unbounded queue
            // depths the stall is always zero and this is exactly `i × gap`.
            let issue = self.cursor.max(Cycles::new(i * self.config.gap.raw()));
            let addr = PhysAddr::new(base + (i * self.config.stride) % self.config.region_bytes);
            // The stream presents its own initiator identity (a co-running
            // hart), distinct from the runtime's `InitiatorId::Host`
            // traffic, so host self-interference during offload setup is
            // observable instead of vanishing into the same-initiator
            // exemption.
            let rsp =
                mem.access(MemReq::read(InitiatorId::HostStream, addr, &mut buf).at(issue))?;
            self.next += 1;
            self.stats.issued += 1;
            self.stats.bytes += self.config.len;
            self.stats.latency_cycles += rsp.latency().raw();
            self.stats.stall_cycles += rsp.issue_stall.raw();
            let phase = match self.phase {
                TrafficPhase::Setup => &mut self.stats.setup,
                TrafficPhase::Device => &mut self.stats.device,
            };
            phase.issued += 1;
            phase.queue_cycles += rsp.queue_delay.raw();
            phase.stall_cycles += rsp.issue_stall.raw();
            self.cursor = issue + rsp.issue_stall + self.config.gap;
            // Device windows: the clock follows the stream's cursor so
            // later untimed host activity lands after the stream. Setup
            // windows: the stream is a *concurrent* co-running process —
            // the runtime's own copies and page-table writes drive the
            // clock, and the stream's arrivals overlap them on the
            // timeline instead of serialising in front of them.
            if self.phase == TrafficPhase::Device {
                clock.advance_to(issue + rsp.latency());
            }
        }
        Ok(())
    }
}

/// Qualitative level of concurrent host memory traffic.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterferenceLevel {
    /// The host is idle while the accelerator runs (the default for every
    /// experiment except Figure 5's interference curves).
    #[default]
    Idle,
    /// The host issues a steady random-access stream (the paper's synthetic
    /// interference program).
    RandomTraffic,
    /// A heavier stream, used for sensitivity analysis beyond the paper.
    Saturating,
}

impl InterferenceLevel {
    /// Converts the level into a memory-system interference configuration;
    /// `None` means no interference is installed.
    pub fn to_config(self, seed: u64) -> Option<InterferenceConfig> {
        match self {
            InterferenceLevel::Idle => None,
            InterferenceLevel::RandomTraffic => Some(InterferenceConfig {
                intensity: 0.35,
                llc_lines_per_access: 0.25,
                seed,
            }),
            InterferenceLevel::Saturating => Some(InterferenceConfig {
                intensity: 0.7,
                llc_lines_per_access: 1.0,
                seed,
            }),
        }
    }

    /// Human-readable label used in experiment reports.
    pub const fn label(self) -> &'static str {
        match self {
            InterferenceLevel::Idle => "host idle",
            InterferenceLevel::RandomTraffic => "host random traffic",
            InterferenceLevel::Saturating => "host saturating traffic",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sva_mem::{FabricConfig, MemSysConfig};

    fn timed_mem() -> MemorySystem {
        MemorySystem::new(MemSysConfig {
            fabric: FabricConfig {
                timed_host_ptw: true,
                ..FabricConfig::default()
            },
            ..MemSysConfig::default()
        })
    }

    #[test]
    fn stream_paces_timestamps_and_reserves_the_bus() {
        let mut mem = timed_mem();
        let clock = GlobalClock::new();
        let cfg = HostTrafficConfig {
            accesses: 32,
            gap: Cycles::new(100),
            ..HostTrafficConfig::default()
        };
        let mut stream = HostTrafficStream::new(cfg);
        stream.inject(&mut mem, &clock, 32).unwrap();
        assert_eq!(stream.stats().issued, 32);
        assert_eq!(stream.remaining(), 0);
        // Paced arrivals: the clock followed the stream's cursor past the
        // last issue point.
        assert!(clock.now() >= Cycles::new(31 * 100));
        // Timed host accesses reserved bus occupancy: a DMA burst arriving
        // inside the window observes queueing behind host traffic. The
        // stream presents its own `host_stream` identity.
        let host = mem
            .fabric()
            .initiator_stats(InitiatorId::HostStream)
            .expect("host_stream row exists");
        assert_eq!(host.reads, 32);
        assert!(host.occupancy_cycles > 0, "stream must reserve occupancy");
        assert_eq!(stream.stats().device.issued, 32, "default phase is device");
        assert_eq!(stream.stats().setup.issued, 0);
    }

    #[test]
    fn phases_split_the_accounting_and_windows_keep_stats() {
        let mut mem = timed_mem();
        let clock = GlobalClock::new();
        let mut stream = HostTrafficStream::new(HostTrafficConfig {
            accesses: 8,
            ..HostTrafficConfig::default()
        });
        stream.begin_window(TrafficPhase::Setup);
        stream.inject(&mut mem, &clock, 8).unwrap();
        assert_eq!(stream.stats().setup.issued, 8);
        // A new device window rewinds the cursor but keeps the setup row.
        stream.begin_window(TrafficPhase::Device);
        assert_eq!(stream.remaining(), 8);
        stream.inject(&mut mem, &clock, 8).unwrap();
        assert_eq!(stream.stats().setup.issued, 8);
        assert_eq!(stream.stats().device.issued, 8);
        assert_eq!(stream.stats().issued, 16);
        assert_eq!(
            stream.stats().phase(TrafficPhase::Setup).issued,
            8,
            "phase accessor addresses the right row"
        );
        stream.reset_stats();
        assert_eq!(stream.stats().issued, 0);
    }

    #[test]
    fn full_host_port_records_issue_stalls() {
        use sva_mem::MemSysConfig;
        // One-slot request queue: back-to-back paced reads with long
        // occupancies pile up at the port and the stall is measured.
        let mut mem = MemorySystem::new(MemSysConfig {
            fabric: FabricConfig {
                timed_host_ptw: true,
                contention_enabled: true,
                req_queue_depth: 1,
                rsp_queue_depth: 1,
                ..FabricConfig::default()
            },
            ..MemSysConfig::default()
        });
        let clock = GlobalClock::new();
        let mut stream = HostTrafficStream::new(HostTrafficConfig {
            accesses: 32,
            gap: Cycles::new(1),
            len: 2048,
            ..HostTrafficConfig::default()
        });
        stream.inject(&mut mem, &clock, 32).unwrap();
        assert!(
            stream.stats().stall_cycles > 0,
            "a full host port must record stalls: {:?}",
            stream.stats()
        );
        assert_eq!(
            stream.stats().device.stall_cycles,
            stream.stats().stall_cycles
        );
        let row = mem
            .fabric()
            .initiator_stats(InitiatorId::HostStream)
            .unwrap();
        assert_eq!(row.issue_stall_cycles, stream.stats().stall_cycles);
        assert!(row.req_queue_peak >= 1);
    }

    #[test]
    fn stream_restart_rewinds_the_window() {
        let mut mem = timed_mem();
        let clock = GlobalClock::new();
        let mut stream = HostTrafficStream::new(HostTrafficConfig {
            accesses: 10,
            ..HostTrafficConfig::default()
        });
        stream.inject(&mut mem, &clock, 4).unwrap();
        assert_eq!(stream.remaining(), 6);
        stream.inject(&mut mem, &clock, 100).unwrap();
        assert_eq!(stream.remaining(), 0, "inject clamps to the window");
        stream.restart();
        assert_eq!(stream.remaining(), 10);
        assert_eq!(stream.stats().issued, 0);
    }

    #[test]
    fn idle_produces_no_config() {
        assert!(InterferenceLevel::Idle.to_config(1).is_none());
    }

    #[test]
    fn levels_are_ordered_by_intensity() {
        let random = InterferenceLevel::RandomTraffic.to_config(1).unwrap();
        let saturating = InterferenceLevel::Saturating.to_config(1).unwrap();
        assert!(saturating.intensity > random.intensity);
        assert!(saturating.llc_lines_per_access > random.llc_lines_per_access);
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            InterferenceLevel::Idle.label(),
            InterferenceLevel::RandomTraffic.label(),
            InterferenceLevel::Saturating.label(),
        ];
        assert_eq!(
            labels
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            3
        );
    }
}
