//! Model of the CVA6 host subsystem and its software stack.
//!
//! The host side of the paper's platform is a single 64-bit CVA6 core running
//! Linux. Four of its activities matter for the evaluation and are modelled
//! here:
//!
//! * [`cpu`] — the core's memory path (32 KiB write-through L1 data cache in
//!   front of the shared memory system) and simple instruction-cost
//!   accounting;
//! * [`exec`] — single-threaded execution of the benchmark kernels on the
//!   host (the "CVA6 executes the kernel" bar of Figure 2);
//! * [`copy`] — the `memcpy` into / out of the physically contiguous reserved
//!   DRAM used by copy-based offloading;
//! * [`driver`] — the Linux IOMMU driver model: `ioctl` entry, page pinning,
//!   IO page-table construction and IOTLB invalidation (the "map" bars of
//!   Figures 2 and 3);
//! * [`traffic`] — presets for the synthetic host interference used in
//!   Figure 5;
//! * [`serving`] — the open-loop serving front-end: bounded admission of
//!   multi-tenant offload requests plus a pluggable dispatch policy.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod copy;
pub mod cpu;
pub mod driver;
pub mod exec;
pub mod serving;
pub mod traffic;

pub use copy::{CopyEngine, CopyStats};
pub use cpu::{HostCpu, HostCpuConfig};
pub use driver::{DriverConfig, FaultServicer, IommuDriver, MappingCost, MappingHandle};
pub use exec::{HostKernelCost, HostKernelRunner, HostRunStats};
pub use serving::{AdmissionStats, DispatchPolicy, Dispatcher, ServingRequest, Tenant};
pub use traffic::{
    HostTrafficConfig, HostTrafficStats, HostTrafficStream, InterferenceLevel, PhaseTraffic,
    TrafficPhase,
};
