//! The CVA6 core's memory path and instruction-cost accounting.
//!
//! CVA6 is an in-order, single-issue application-class core; for the
//! quantities the paper measures, what matters is the cost of its memory
//! accesses (through a 32 KiB write-through L1 data cache, then the LLC, then
//! DRAM) and a simple cycles-per-instruction charge for the arithmetic in
//! between. [`HostCpu`] provides exactly that: `load`/`store` return the
//! cycles of one access, `execute` charges ALU/FPU work, and an internal
//! counter accumulates the total so callers can read off elapsed time.

use serde::{Deserialize, Serialize};
use sva_common::{Cycles, GlobalClock, PhysAddr, Result, CACHE_LINE_SIZE};
use sva_mem::cache::{Cache, CacheConfig};
use sva_mem::MemorySystem;

/// Configuration of the host CPU model.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HostCpuConfig {
    /// Geometry of the L1 data cache (write-through on CVA6).
    pub l1d: CacheConfig,
    /// Latency of an L1 hit.
    pub l1_hit_latency: Cycles,
    /// Average cycles per non-memory instruction (integer/float pipeline).
    pub cycles_per_op: f64,
    /// Cost of invalidating the whole L1 (the `flush_l1()` of Listing 1);
    /// write-through means no write-backs are needed.
    pub l1_flush_cost: Cycles,
}

impl Default for HostCpuConfig {
    fn default() -> Self {
        Self {
            l1d: CacheConfig::cva6_l1d(),
            l1_hit_latency: Cycles::new(1),
            cycles_per_op: 1.0,
            l1_flush_cost: Cycles::new(64),
        }
    }
}

/// The CVA6 core model.
#[derive(Clone, Debug)]
pub struct HostCpu {
    config: HostCpuConfig,
    l1d: Cache,
    elapsed: Cycles,
    /// The platform's global simulation clock: every cycle the core charges
    /// advances it, so host activity moves shared time forward and later
    /// accesses are stamped after the work the host has already done.
    clock: GlobalClock,
}

impl HostCpu {
    /// Creates a host CPU with the given configuration and a private clock.
    pub fn new(config: HostCpuConfig) -> Self {
        Self {
            l1d: Cache::new(config.l1d),
            elapsed: Cycles::ZERO,
            clock: GlobalClock::new(),
            config,
        }
    }

    /// Shares the platform's global clock with this core (replacing the
    /// private clock created by [`HostCpu::new`]).
    pub fn attach_clock(&mut self, clock: &GlobalClock) {
        self.clock = clock.clone();
    }

    /// The configuration of this CPU.
    pub const fn config(&self) -> &HostCpuConfig {
        &self.config
    }

    /// Total cycles accumulated by this CPU since creation or the last
    /// [`HostCpu::reset_elapsed`].
    pub const fn elapsed(&self) -> Cycles {
        self.elapsed
    }

    /// Resets the elapsed-cycle counter (cache contents are kept).
    pub fn reset_elapsed(&mut self) {
        self.elapsed = Cycles::ZERO;
    }

    /// L1 data cache statistics.
    pub fn l1_stats(&self) -> sva_common::stats::HitMiss {
        self.l1d.stats()
    }

    fn charge(&mut self, cycles: Cycles) -> Cycles {
        self.elapsed += cycles;
        self.clock.advance(cycles);
        cycles
    }

    /// Charges `ops` non-memory instructions.
    pub fn execute(&mut self, ops: u64) -> Cycles {
        let cycles = Cycles::new((ops as f64 * self.config.cycles_per_op).ceil() as u64);
        self.charge(cycles)
    }

    /// Performs a timed load of `len` bytes at physical address `addr`
    /// (`len` is expected to stay within one cache line, as real accesses
    /// do).
    ///
    /// # Errors
    ///
    /// Propagates decode errors from the memory system.
    pub fn load(&mut self, mem: &mut MemorySystem, addr: PhysAddr, len: u64) -> Result<Cycles> {
        let mut cycles = self.config.l1_hit_latency;
        let cacheable = mem.map().is_llc_cacheable(addr);
        if cacheable {
            if !self.l1d.access(addr, false).is_hit() {
                let mut line = [0u8; CACHE_LINE_SIZE as usize];
                cycles += mem.host_read(addr.cache_line_base(), &mut line)?;
            }
        } else {
            let mut buf = vec![0u8; len as usize];
            cycles += mem.host_read(addr, &mut buf)?;
        }
        Ok(self.charge(cycles))
    }

    /// Performs a timed store of `len` bytes at physical address `addr`.
    ///
    /// CVA6's L1 is write-through: the line is updated if present (no
    /// write-allocate) and the store always proceeds to the memory system.
    /// The store is *timing only* — it re-writes the bytes already present so
    /// functional contents (which callers manage through the untimed
    /// interfaces) are never clobbered.
    ///
    /// # Errors
    ///
    /// Propagates decode errors from the memory system.
    pub fn store(&mut self, mem: &mut MemorySystem, addr: PhysAddr, len: u64) -> Result<Cycles> {
        let mut cycles = self.config.l1_hit_latency;
        let cacheable = mem.map().is_llc_cacheable(addr);
        if cacheable && self.l1d.probe(addr) {
            // Update the resident line (timing-wise free beyond the hit).
            self.l1d.access(addr, false);
        }
        let mut current = vec![0u8; len as usize];
        mem.read_phys(addr, &mut current)?;
        cycles += mem.host_write(addr, &current)?;
        Ok(self.charge(cycles))
    }

    /// Performs a functional + timed store of actual data (used by the
    /// driver model when it writes page-table entries whose values matter).
    ///
    /// # Errors
    ///
    /// Propagates decode errors from the memory system.
    pub fn store_u64(
        &mut self,
        mem: &mut MemorySystem,
        addr: PhysAddr,
        value: u64,
    ) -> Result<Cycles> {
        let mut cycles = self.config.l1_hit_latency;
        if mem.map().is_llc_cacheable(addr) && self.l1d.probe(addr) {
            self.l1d.access(addr, false);
        }
        cycles += mem.host_write(addr, &value.to_le_bytes())?;
        Ok(self.charge(cycles))
    }

    /// Invalidates the whole L1 data cache (Listing 1's `flush_l1()`), which
    /// on a write-through cache requires no write-backs.
    pub fn flush_l1(&mut self) -> Cycles {
        self.l1d.flush_all();
        let cost = self.config.l1_flush_cost;
        self.charge(cost)
    }
}

impl Default for HostCpu {
    fn default() -> Self {
        Self::new(HostCpuConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sva_axi::addrmap::DRAM_BASE;
    use sva_mem::MemSysConfig;

    fn mem(latency: u64) -> MemorySystem {
        MemorySystem::new(MemSysConfig {
            dram_latency: Cycles::new(latency),
            ..MemSysConfig::default()
        })
    }

    #[test]
    fn repeated_loads_hit_in_l1() {
        let mut m = mem(600);
        let mut cpu = HostCpu::default();
        let addr = PhysAddr::new(DRAM_BASE + 0x1000);
        let cold = cpu.load(&mut m, addr, 8).unwrap();
        let warm = cpu.load(&mut m, addr + 8, 8).unwrap();
        assert!(cold.raw() > 600);
        assert_eq!(warm, Cycles::new(1));
        assert_eq!(cpu.l1_stats().hits, 1);
        assert_eq!(cpu.l1_stats().misses, 1);
    }

    #[test]
    fn stores_are_write_through() {
        let mut m = mem(200);
        let mut cpu = HostCpu::default();
        let addr = PhysAddr::new(DRAM_BASE + 0x2000);
        // Even after a load brought the line in, a store still reaches memory
        // (and therefore the LLC): host access counter increases every time.
        cpu.load(&mut m, addr, 8).unwrap();
        let before = m.stats().host_accesses;
        cpu.store(&mut m, addr, 8).unwrap();
        cpu.store(&mut m, addr, 8).unwrap();
        assert_eq!(m.stats().host_accesses, before + 2);
    }

    #[test]
    fn uncached_loads_always_pay_memory_latency() {
        let mut m = mem(600);
        let mut cpu = HostCpu::default();
        let addr = m.map().reserved_dram_base();
        let a = cpu.load(&mut m, addr, 8).unwrap();
        let b = cpu.load(&mut m, addr, 8).unwrap();
        assert!(a.raw() > 600);
        assert!(b.raw() > 600);
    }

    #[test]
    fn execute_and_elapsed_accounting() {
        let mut cpu = HostCpu::default();
        cpu.execute(100);
        let mut m = mem(200);
        cpu.load(&mut m, PhysAddr::new(DRAM_BASE), 8).unwrap();
        assert!(cpu.elapsed().raw() > 100);
        cpu.reset_elapsed();
        assert_eq!(cpu.elapsed(), Cycles::ZERO);
    }

    #[test]
    fn flush_l1_invalidates_contents() {
        let mut m = mem(600);
        let mut cpu = HostCpu::default();
        let addr = PhysAddr::new(DRAM_BASE + 0x3000);
        cpu.load(&mut m, addr, 8).unwrap();
        cpu.flush_l1();
        // After the flush the next load misses in L1 again (though it may
        // now hit in the LLC).
        let after = cpu.load(&mut m, addr, 8).unwrap();
        assert!(after > Cycles::new(1));
        assert_eq!(cpu.l1_stats().misses, 2);
    }
}
