//! The copy engine used by copy-based offloading.
//!
//! Without shared virtual addressing, the host must copy every input buffer
//! from its (paged, scattered) virtual address space into the physically
//! contiguous reserved DRAM area the accelerator can address directly, and
//! copy the results back afterwards. The copy runs on the CVA6 core itself
//! (`memcpy`), so it streams through the L1/LLC on the read side and issues
//! posted uncached stores on the write side. Figures 2 and 3 measure exactly
//! this cost and its scaling with input size and DRAM latency.

use serde::{Deserialize, Serialize};
use sva_common::{Cycles, PhysAddr, Result, VirtAddr, CACHE_LINE_SIZE};
use sva_mem::MemorySystem;
use sva_vm::AddressSpace;

use crate::cpu::HostCpu;

/// Statistics of one copy operation.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CopyStats {
    /// Cycles spent by the host performing the copy.
    pub cycles: Cycles,
    /// Bytes copied.
    pub bytes: u64,
}

/// Host-driven `memcpy` between user buffers and the reserved contiguous
/// DRAM area.
#[derive(Clone, Debug, Default)]
pub struct CopyEngine;

impl CopyEngine {
    /// Creates a copy engine.
    pub fn new() -> Self {
        Self
    }

    /// Copies `len` bytes from the user buffer at `src_va` to the physically
    /// contiguous destination `dst_pa` (typically in the reserved, uncached
    /// DRAM area). Moves the actual data and returns the host cycles spent.
    ///
    /// # Errors
    ///
    /// Propagates page faults and decode errors.
    pub fn copy_to_device(
        &self,
        cpu: &mut HostCpu,
        mem: &mut MemorySystem,
        space: &AddressSpace,
        src_va: VirtAddr,
        dst_pa: PhysAddr,
        len: u64,
    ) -> Result<CopyStats> {
        let mut cycles = Cycles::ZERO;
        let mut offset = 0u64;
        let mut line = vec![0u8; CACHE_LINE_SIZE as usize];
        while offset < len {
            let chunk = (len - offset).min(CACHE_LINE_SIZE) as usize;
            let src_pa = space.translate(mem, src_va + offset)?;
            // Functional move.
            space.read_virt(mem, src_va + offset, &mut line[..chunk])?;
            mem.write_phys(dst_pa + offset, &line[..chunk])?;
            // Timing: cached read, posted uncached write.
            cycles += cpu.load(mem, src_pa, chunk as u64)?;
            cycles += cpu.store(mem, dst_pa + offset, chunk as u64)?;
            // Loop overhead of the memcpy inner loop.
            cycles += cpu.execute(4);
            offset += chunk as u64;
        }
        Ok(CopyStats { cycles, bytes: len })
    }

    /// Copies `len` bytes back from the contiguous device buffer at `src_pa`
    /// into the user buffer at `dst_va`.
    ///
    /// # Errors
    ///
    /// Propagates page faults and decode errors.
    pub fn copy_from_device(
        &self,
        cpu: &mut HostCpu,
        mem: &mut MemorySystem,
        space: &AddressSpace,
        src_pa: PhysAddr,
        dst_va: VirtAddr,
        len: u64,
    ) -> Result<CopyStats> {
        let mut cycles = Cycles::ZERO;
        let mut offset = 0u64;
        let mut line = vec![0u8; CACHE_LINE_SIZE as usize];
        while offset < len {
            let chunk = (len - offset).min(CACHE_LINE_SIZE) as usize;
            let dst_pa = space.translate(mem, dst_va + offset)?;
            // Functional move.
            mem.read_phys(src_pa + offset, &mut line[..chunk])?;
            space.write_virt(mem, dst_va + offset, &line[..chunk])?;
            // Timing: uncached read (latency-bound), cached write.
            cycles += cpu.load(mem, src_pa + offset, chunk as u64)?;
            cycles += cpu.store(mem, dst_pa, chunk as u64)?;
            cycles += cpu.execute(4);
            offset += chunk as u64;
        }
        Ok(CopyStats { cycles, bytes: len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sva_common::PAGE_SIZE;
    use sva_mem::MemSysConfig;
    use sva_vm::FrameAllocator;

    fn setup(latency: u64) -> (MemorySystem, FrameAllocator, AddressSpace, HostCpu) {
        let mut mem = MemorySystem::new(MemSysConfig {
            dram_latency: Cycles::new(latency),
            ..MemSysConfig::default()
        });
        let mut frames = FrameAllocator::linux_pool();
        let space = AddressSpace::new(&mut mem, &mut frames).unwrap();
        (mem, frames, space, HostCpu::default())
    }

    #[test]
    fn copy_moves_data_to_reserved_dram_and_back() {
        let (mut mem, mut frames, mut space, mut cpu) = setup(200);
        let len = 2 * PAGE_SIZE;
        let va = space.alloc_buffer(&mut mem, &mut frames, len).unwrap();
        let data: Vec<u8> = (0..len).map(|i| (i % 239) as u8).collect();
        space.write_virt(&mut mem, va, &data).unwrap();

        let dst = mem.map().reserved_dram_base();
        let engine = CopyEngine::new();
        let stats = engine
            .copy_to_device(&mut cpu, &mut mem, &space, va, dst, len)
            .unwrap();
        assert_eq!(stats.bytes, len);
        assert!(stats.cycles.raw() > 0);
        let mut out = vec![0u8; len as usize];
        mem.read_phys(dst, &mut out).unwrap();
        assert_eq!(out, data);

        // Mutate the device copy and copy it back.
        mem.write_phys(dst, &[0xAB; 64]).unwrap();
        let back_va = space.alloc_buffer(&mut mem, &mut frames, len).unwrap();
        engine
            .copy_from_device(&mut cpu, &mut mem, &space, dst, back_va, len)
            .unwrap();
        let mut back = vec![0u8; 64];
        space.read_virt(&mem, back_va, &mut back).unwrap();
        assert_eq!(back, [0xAB; 64]);
    }

    #[test]
    fn copy_cost_scales_with_size() {
        let (mut mem, mut frames, mut space, mut cpu) = setup(200);
        let va = space
            .alloc_buffer(&mut mem, &mut frames, 32 * PAGE_SIZE)
            .unwrap();
        let dst = mem.map().reserved_dram_base();
        let engine = CopyEngine::new();
        let small = engine
            .copy_to_device(&mut cpu, &mut mem, &space, va, dst, 4 * PAGE_SIZE)
            .unwrap();
        let large = engine
            .copy_to_device(&mut cpu, &mut mem, &space, va, dst, 16 * PAGE_SIZE)
            .unwrap();
        let ratio = large.cycles.as_f64() / small.cycles.as_f64();
        assert!(ratio > 3.0 && ratio < 5.0, "expected ~4x, got {ratio:.2}");
    }

    #[test]
    fn copy_cost_scales_with_dram_latency() {
        // The paper (Fig. 3) measures copying 16 pages to be ~3.4x slower at
        // 1000 cycles of DRAM latency than at 200.
        let run = |latency| {
            let (mut mem, mut frames, mut space, mut cpu) = setup(latency);
            let va = space
                .alloc_buffer(&mut mem, &mut frames, 16 * PAGE_SIZE)
                .unwrap();
            // Flush caches so the copy streams from DRAM (cold input).
            cpu.flush_l1();
            mem.flush_llc();
            let dst = mem.map().reserved_dram_base();
            CopyEngine::new()
                .copy_to_device(&mut cpu, &mut mem, &space, va, dst, 16 * PAGE_SIZE)
                .unwrap()
                .cycles
        };
        let slow = run(1000).as_f64();
        let fast = run(200).as_f64();
        let ratio = slow / fast;
        assert!(
            ratio > 2.5 && ratio < 4.5,
            "copy latency scaling should be roughly 3-4x, got {ratio:.2}"
        );
    }
}
