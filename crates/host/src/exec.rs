//! Single-threaded host execution of the benchmark kernels.
//!
//! For the application-level comparison of Figure 2 (left), the paper also
//! runs each kernel on the CVA6 core alone. The host runner models that
//! execution as a streaming pass over the kernel's buffers through the L1 /
//! LLC / DRAM hierarchy, plus a per-element arithmetic charge provided by the
//! kernel's cost description. This captures the two effects that matter at
//! this granularity — the single core has no parallelism and its cache
//! hierarchy does not hide DRAM latency for streaming working sets — without
//! simulating every host instruction.

use serde::{Deserialize, Serialize};
use sva_common::{Cycles, Result, VirtAddr, CACHE_LINE_SIZE};
use sva_mem::MemorySystem;
use sva_vm::AddressSpace;

use crate::cpu::HostCpu;

/// Cost description of a kernel when run on the host core.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HostKernelCost {
    /// Total arithmetic/control operations executed.
    pub ops: u64,
    /// Average cycles per operation on the CVA6 pipeline (FPU operations on
    /// CVA6 are not fully pipelined, so this is usually above 1).
    pub cycles_per_op: f64,
    /// Number of sequential passes the kernel makes over its input buffers
    /// (e.g. merge sort reads its data `log2 n` times).
    pub read_passes: u32,
    /// Number of sequential passes over its output buffers.
    pub write_passes: u32,
}

impl HostKernelCost {
    /// A simple one-pass streaming kernel (axpy-like).
    pub const fn streaming(ops: u64, cycles_per_op: f64) -> Self {
        Self {
            ops,
            cycles_per_op,
            read_passes: 1,
            write_passes: 1,
        }
    }
}

/// Result of a host kernel run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostRunStats {
    /// Total host cycles.
    pub total: Cycles,
    /// Cycles attributable to memory accesses.
    pub memory: Cycles,
    /// Cycles attributable to arithmetic.
    pub compute: Cycles,
}

/// Runs kernels on the host core.
#[derive(Clone, Debug, Default)]
pub struct HostKernelRunner;

impl HostKernelRunner {
    /// Creates a runner.
    pub fn new() -> Self {
        Self
    }

    /// Executes a kernel described by `cost` over the given input and output
    /// buffers (virtual ranges of `space`), returning the timing breakdown.
    ///
    /// # Errors
    ///
    /// Propagates page faults for unmapped buffers.
    pub fn run(
        &self,
        cpu: &mut HostCpu,
        mem: &mut MemorySystem,
        space: &AddressSpace,
        cost: HostKernelCost,
        inputs: &[(VirtAddr, u64)],
        outputs: &[(VirtAddr, u64)],
    ) -> Result<HostRunStats> {
        let start = cpu.elapsed();

        // Memory traffic: stream each buffer at cache-line granularity.
        let mut memory = Cycles::ZERO;
        for _ in 0..cost.read_passes {
            for &(va, len) in inputs {
                memory += self.stream(cpu, mem, space, va, len, false)?;
            }
        }
        for _ in 0..cost.write_passes {
            for &(va, len) in outputs {
                memory += self.stream(cpu, mem, space, va, len, true)?;
            }
        }

        // Arithmetic.
        let compute = cpu.execute((cost.ops as f64 * cost.cycles_per_op).ceil() as u64);

        Ok(HostRunStats {
            total: cpu.elapsed() - start,
            memory,
            compute,
        })
    }

    fn stream(
        &self,
        cpu: &mut HostCpu,
        mem: &mut MemorySystem,
        space: &AddressSpace,
        va: VirtAddr,
        len: u64,
        is_write: bool,
    ) -> Result<Cycles> {
        let mut total = Cycles::ZERO;
        let mut offset = 0u64;
        while offset < len {
            let pa = space.translate(mem, va + offset)?;
            total += if is_write {
                cpu.store(mem, pa, 8)?
            } else {
                cpu.load(mem, pa, 8)?
            };
            offset += CACHE_LINE_SIZE;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sva_common::PAGE_SIZE;
    use sva_mem::MemSysConfig;
    use sva_vm::FrameAllocator;

    fn setup(latency: u64) -> (MemorySystem, FrameAllocator, AddressSpace) {
        let mut mem = MemorySystem::new(MemSysConfig {
            dram_latency: Cycles::new(latency),
            ..MemSysConfig::default()
        });
        let mut frames = FrameAllocator::linux_pool();
        let space = AddressSpace::new(&mut mem, &mut frames).unwrap();
        (mem, frames, space)
    }

    #[test]
    fn host_run_charges_memory_and_compute() {
        let (mut mem, mut frames, mut space) = setup(200);
        let x = space
            .alloc_buffer(&mut mem, &mut frames, 4 * PAGE_SIZE)
            .unwrap();
        let y = space
            .alloc_buffer(&mut mem, &mut frames, 4 * PAGE_SIZE)
            .unwrap();
        let mut cpu = HostCpu::default();
        let runner = HostKernelRunner::new();
        let stats = runner
            .run(
                &mut cpu,
                &mut mem,
                &space,
                HostKernelCost::streaming(4096, 3.0),
                &[(x, 4 * PAGE_SIZE), (y, 4 * PAGE_SIZE)],
                &[(y, 4 * PAGE_SIZE)],
            )
            .unwrap();
        assert_eq!(stats.compute, Cycles::new(12288));
        assert!(stats.memory.raw() > 0);
        assert_eq!(stats.total, stats.memory + stats.compute);
    }

    #[test]
    fn host_run_slows_down_with_memory_latency() {
        let run = |latency| {
            let (mut mem, mut frames, mut space) = setup(latency);
            let x = space
                .alloc_buffer(&mut mem, &mut frames, 16 * PAGE_SIZE)
                .unwrap();
            let mut cpu = HostCpu::default();
            HostKernelRunner::new()
                .run(
                    &mut cpu,
                    &mut mem,
                    &space,
                    HostKernelCost::streaming(1000, 1.0),
                    &[(x, 16 * PAGE_SIZE)],
                    &[],
                )
                .unwrap()
                .total
        };
        assert!(run(1000) > run(200) * 2);
    }

    #[test]
    fn multiple_passes_multiply_memory_cost() {
        let (mut mem, mut frames, mut space) = setup(200);
        let x = space
            .alloc_buffer(&mut mem, &mut frames, 32 * PAGE_SIZE)
            .unwrap();
        let mut cpu = HostCpu::default();
        let runner = HostKernelRunner::new();
        let one = runner
            .run(
                &mut cpu,
                &mut mem,
                &space,
                HostKernelCost {
                    ops: 0,
                    cycles_per_op: 1.0,
                    read_passes: 1,
                    write_passes: 0,
                },
                &[(x, 32 * PAGE_SIZE)],
                &[],
            )
            .unwrap();
        let four = runner
            .run(
                &mut cpu,
                &mut mem,
                &space,
                HostKernelCost {
                    ops: 0,
                    cycles_per_op: 1.0,
                    read_passes: 4,
                    write_passes: 0,
                },
                &[(x, 32 * PAGE_SIZE)],
                &[],
            )
            .unwrap();
        // The buffer (128 KiB) does not fit the 32 KiB L1 but fits the LLC,
        // so later passes are cheaper per pass but still non-trivial.
        assert!(four.memory > one.memory);
    }

    #[test]
    fn unmapped_buffer_faults() {
        let (mut mem, _frames, space) = setup(200);
        let mut cpu = HostCpu::default();
        let err = HostKernelRunner::new().run(
            &mut cpu,
            &mut mem,
            &space,
            HostKernelCost::streaming(10, 1.0),
            &[(VirtAddr::new(0xDEAD_0000), 64)],
            &[],
        );
        assert!(err.is_err());
    }
}
