//! The Linux IOMMU driver model.
//!
//! The paper implements a small device driver plus a userspace library that
//! lets the application attach the accelerator to an IOMMU domain and create
//! IO-virtual ↔ physical mappings before an offload (`create_iommu_mapping`
//! in Listing 1). The cost of that step — the "map" bars of Figures 2
//! and 3 — is dominated by three ingredients, all modelled here:
//!
//! * the fixed cost of entering the kernel through `ioctl` and returning;
//! * per-page work: pinning the user page (touching `struct page`
//!   metadata), building the scatter list, and writing up to three IO
//!   page-table entries per 4 KiB page;
//! * the IOTLB/device-directory invalidation commands issued afterwards.
//!
//! Because the driver performs these accesses through the CVA6's cache
//! hierarchy, the freshly written page-table entries end up in the shared
//! LLC — which is exactly why the IOMMU's later page-table walks hit there
//! (Section IV-C of the paper).

use serde::{Deserialize, Serialize};
use sva_axi::addrmap::DRAM_BASE;
use sva_common::{Cycles, Error, InitiatorId, Iova, PhysAddr, Result, VirtAddr, MIB, PAGE_SIZE};
use sva_iommu::{Command, Iommu, PageRequestHandler};
use sva_mem::{MemReq, MemorySystem};
use sva_vm::{AddressSpace, FrameAllocator, PageTable, PteFlags};

use crate::cpu::HostCpu;

/// Base physical address of the kernel's `struct page` array in the model
/// (inside the Linux-managed DRAM half, cacheable).
const STRUCT_PAGE_ARRAY_BASE: u64 = DRAM_BASE + 16 * MIB;

/// Base physical address of the driver's scatter-list / bookkeeping arena.
const DRIVER_ARENA_BASE: u64 = DRAM_BASE + 24 * MIB;

/// Tunable costs of the driver model.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DriverConfig {
    /// Fixed host cycles for an `ioctl` round trip (syscall entry/exit,
    /// argument copy, dispatch) on the 50 MHz CVA6 running Linux.
    pub ioctl_overhead: Cycles,
    /// Host cycles per memory-mapped IOMMU register access (the register
    /// window is an uncached device region).
    pub mmio_access: Cycles,
    /// Arithmetic/bookkeeping instructions executed per mapped page.
    pub per_page_ops: u64,
    /// Device ID the cluster's DMA traffic uses.
    pub device_id: u32,
    /// Cycles from a device's page-request group hitting the IOMMU queue to
    /// the host fault handler starting to run (interrupt delivery, context
    /// switch into the IOMMU driver's PRI thread).
    pub fault_signal_latency: Cycles,
    /// Handler cycles per serviced page request (looking the faulting
    /// process/VMA up, pinning the page, building the mapping request) —
    /// on top of the timed page-table touches the handler performs on the
    /// fabric.
    pub per_fault_cycles: Cycles,
}

impl Default for DriverConfig {
    fn default() -> Self {
        Self {
            ioctl_overhead: Cycles::new(15_000),
            mmio_access: Cycles::new(40),
            per_page_ops: 60,
            device_id: 1,
            fault_signal_latency: Cycles::new(800),
            per_fault_cycles: Cycles::new(1_200),
        }
    }
}

/// Accounting of a mapping or unmapping operation.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappingCost {
    /// Host cycles the operation took.
    pub cycles: Cycles,
    /// Pages mapped or unmapped.
    pub pages: u64,
    /// IO page-table entries written.
    pub pte_writes: u64,
}

/// A live IOVA mapping returned by [`IommuDriver::map_buffer`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappingHandle {
    /// First IO virtual address of the mapping (equal to the user virtual
    /// address of the buffer).
    pub iova: Iova,
    /// Length of the mapping in bytes.
    pub len: u64,
    /// Number of 4 KiB pages covered.
    pub pages: u64,
}

/// The IOMMU driver: owns the accelerator's IO page table and mirrors the
/// kernel driver's map/unmap/attach entry points.
#[derive(Clone, Debug)]
pub struct IommuDriver {
    config: DriverConfig,
    io_table: Option<PageTable>,
    mapped_pages: u64,
}

impl IommuDriver {
    /// Creates a driver with the given cost configuration.
    pub fn new(config: DriverConfig) -> Self {
        Self {
            config,
            io_table: None,
            mapped_pages: 0,
        }
    }

    /// The driver configuration.
    pub const fn config(&self) -> &DriverConfig {
        &self.config
    }

    /// The accelerator's IO page table, once attached.
    pub const fn io_table(&self) -> Option<&PageTable> {
        self.io_table.as_ref()
    }

    /// Number of pages currently mapped for the device.
    pub const fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    /// Attaches the accelerator to a fresh IOMMU domain: allocates the IO
    /// page table, installs the device context and programs the IOMMU's
    /// `ddtp` register.
    ///
    /// # Errors
    ///
    /// Returns allocation failures from the frame pool.
    pub fn attach(
        &mut self,
        cpu: &mut HostCpu,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
        frames: &mut FrameAllocator,
        pscid: u32,
    ) -> Result<MappingCost> {
        let start = cpu.elapsed();
        let io_table = PageTable::create(frames)?;
        iommu.attach_device(mem, frames, self.config.device_id, pscid, io_table.root())?;
        self.io_table = Some(io_table);
        // Probing capabilities, programming ddtp and the queue registers.
        for _ in 0..6 {
            cpu.execute(self.config.mmio_access.raw());
        }
        cpu.execute(self.config.ioctl_overhead.raw());
        Ok(MappingCost {
            cycles: cpu.elapsed() - start,
            pages: 0,
            pte_writes: 0,
        })
    }

    /// Maps the user buffer `[va, va + len)` of `space` into the device's IO
    /// address space at the identical IO virtual addresses (`iova == va`),
    /// the way the paper's zero-copy offload does.
    ///
    /// Performs the functional page-table updates *and* charges the host
    /// cycles of the driver work, including the timed page-table-entry
    /// stores that leave the PTE lines in the LLC.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IommuNotPresent`] if [`IommuDriver::attach`] has not
    /// been called, plus page faults for unmapped user pages.
    // The signature mirrors the kernel driver entry point: every platform
    // component the real ioctl touches is threaded through explicitly.
    #[allow(clippy::too_many_arguments)]
    pub fn map_buffer(
        &mut self,
        cpu: &mut HostCpu,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
        space: &AddressSpace,
        frames: &mut FrameAllocator,
        va: VirtAddr,
        len: u64,
    ) -> Result<(MappingHandle, MappingCost)> {
        let io_table = self.io_table.ok_or(Error::IommuNotPresent)?;
        let start = cpu.elapsed();
        // ioctl entry.
        cpu.execute(self.config.ioctl_overhead.raw() / 2);

        let base = va.page_base();
        let end = (va + len).align_up(PAGE_SIZE);
        let pages = (end - base) / PAGE_SIZE;
        let mut pte_writes = 0u64;

        for i in 0..pages {
            let page_va = base + i * PAGE_SIZE;
            let pa = space.translate(mem, page_va)?;

            // Pin the user page: read its struct page descriptor and its
            // reference-count line, then append a scatter-list entry.
            let pfn = (pa.raw() - DRAM_BASE) >> 12;
            cpu.load(mem, PhysAddr::new(STRUCT_PAGE_ARRAY_BASE + pfn * 64), 8)?;
            cpu.load(
                mem,
                PhysAddr::new(STRUCT_PAGE_ARRAY_BASE + 8 * MIB + pfn * 64),
                8,
            )?;
            cpu.store(mem, PhysAddr::new(DRIVER_ARENA_BASE + (i % 4096) * 16), 16)?;
            cpu.execute(self.config.per_page_ops);

            // Build the IO page-table entry (functional), then perform the
            // timed stores the kernel does, so the PTE lines are hot in the
            // LLC when the IOMMU walks them.
            io_table.map_page(mem, frames, page_va, pa, PteFlags::user_rw())?;
            let walk = io_table.walk(mem, page_va)?;
            for (level, (pte_addr, pte)) in walk.entries.iter().enumerate() {
                if level + 1 == walk.entries.len() {
                    cpu.store_u64(mem, *pte_addr, pte.raw())?;
                    pte_writes += 1;
                } else {
                    cpu.load(mem, *pte_addr, 8)?;
                }
            }
            self.mapped_pages += 1;
        }

        // Invalidate the IOTLB so stale translations are never used, then
        // fence. Each command is a couple of uncached MMIO/queue accesses.
        iommu.process_command(Command::IotlbInvalidate {
            device_id: Some(self.config.device_id),
            iova: None,
        });
        iommu.process_command(Command::Fence);
        cpu.execute(self.config.mmio_access.raw() * 3);

        // ioctl exit.
        cpu.execute(self.config.ioctl_overhead.raw() / 2);

        Ok((
            MappingHandle {
                iova: Iova::from_virt(base),
                len,
                pages,
            },
            MappingCost {
                cycles: cpu.elapsed() - start,
                pages,
                pte_writes,
            },
        ))
    }

    /// Removes a mapping created by [`IommuDriver::map_buffer`] and
    /// invalidates the IOTLB.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IommuNotPresent`] if the device was never attached.
    pub fn unmap_buffer(
        &mut self,
        cpu: &mut HostCpu,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
        handle: MappingHandle,
    ) -> Result<MappingCost> {
        let io_table = self.io_table.ok_or(Error::IommuNotPresent)?;
        let start = cpu.elapsed();
        cpu.execute(self.config.ioctl_overhead.raw() / 2);
        let mut pte_writes = 0;
        for i in 0..handle.pages {
            let page_va = VirtAddr::from_iova(handle.iova) + i * PAGE_SIZE;
            let walk = io_table.walk(mem, page_va)?;
            if let Some((pte_addr, _)) = walk.entries.last() {
                // Clearing the leaf entry is the unmap: a timed store of an
                // invalid PTE.
                cpu.store_u64(mem, *pte_addr, 0)?;
                pte_writes += 1;
            }
            cpu.execute(self.config.per_page_ops / 2);
            self.mapped_pages = self.mapped_pages.saturating_sub(1);
        }
        iommu.process_command(Command::IotlbInvalidate {
            device_id: Some(self.config.device_id),
            iova: None,
        });
        cpu.execute(self.config.mmio_access.raw() * 2);
        cpu.execute(self.config.ioctl_overhead.raw() / 2);
        Ok(MappingCost {
            cycles: cpu.elapsed() - start,
            pages: handle.pages,
            pte_writes,
        })
    }
}

impl Default for IommuDriver {
    fn default() -> Self {
        Self::new(DriverConfig::default())
    }
}

/// The host side of the ATS/PRI demand-paging loop: borrows the driver,
/// the faulting process' address space and the frame allocator for the
/// duration of a device run and services the IOMMU's page-request queue.
///
/// Servicing a request mirrors what the kernel's IO-page-fault handler
/// does: resolve the faulting IOVA against the process page table (the
/// host mapping must exist — demand paging makes *device* mappings lazy,
/// not host ones), install the leaf into the device's IO page table, and
/// touch the page-table memory **through the timed memory system** as
/// host-initiated fabric traffic, so the handler's stores queue behind
/// concurrent DMA like any other initiator. All pending requests are
/// drained into one **group response**; its completion time is when the
/// faulting device may retry.
pub struct FaultServicer<'a> {
    driver: &'a mut IommuDriver,
    space: &'a AddressSpace,
    frames: &'a mut FrameAllocator,
}

impl<'a> FaultServicer<'a> {
    /// Creates a servicer around the driver state of one platform.
    pub fn new(
        driver: &'a mut IommuDriver,
        space: &'a AddressSpace,
        frames: &'a mut FrameAllocator,
    ) -> Self {
        Self {
            driver,
            space,
            frames,
        }
    }
}

impl PageRequestHandler for FaultServicer<'_> {
    fn service(
        &mut self,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
        now: Cycles,
    ) -> Result<Cycles> {
        let io_table = self.driver.io_table.ok_or(Error::IommuNotPresent)?;
        let cfg = self.driver.config;
        // Interrupt delivery + handler entry.
        let mut t = now + cfg.fault_signal_latency;
        let mut serviced_at: Vec<Cycles> = Vec::new();
        let mut any = false;
        while let Some(req) = iommu.pop_page_request() {
            any = true;
            t += cfg.per_fault_cycles;
            let page_va = VirtAddr::from_iova(req.iova).page_base();
            // The host mapping must exist; a request for a page the process
            // never mapped is unresolvable and answered "invalid" (the
            // device's bounded retry loop turns that into a terminal
            // fault).
            let Ok(pa) = self.space.translate(mem, page_va) else {
                iommu.note_page_request_failed();
                continue;
            };
            // Functional mapping into the IO page table, then the timed
            // page-table touches: the handler reads the non-leaf levels and
            // writes the leaf PTE on the fabric as host traffic.
            io_table.map_page(
                mem,
                self.frames,
                page_va,
                pa.page_base(),
                PteFlags::user_rw(),
            )?;
            let walk = io_table.walk(mem, page_va)?;
            for (level, (pte_addr, pte)) in walk.entries.iter().enumerate() {
                let rsp = if level + 1 == walk.entries.len() {
                    let bytes = pte.raw().to_le_bytes();
                    mem.access(MemReq::write(InitiatorId::Host, *pte_addr, &bytes).at(t))?
                } else {
                    let mut bytes = [0u8; 8];
                    mem.access(MemReq::read(InitiatorId::Host, *pte_addr, &mut bytes).at(t))?
                };
                t += rsp.latency();
            }
            self.driver.mapped_pages += 1;
            serviced_at.push(req.issued_at);
        }
        if any {
            // The page tables changed under the walker: in-flight MSHR
            // registers must not serve pre-update PTE values (the fence
            // the handler issues before responding).
            iommu.purge_walk_table();
            iommu.note_group_response();
            for issued in serviced_at {
                iommu.note_page_request_serviced(issued, t);
            }
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sva_mem::MemSysConfig;

    fn setup(
        latency: u64,
        llc: bool,
    ) -> (MemorySystem, FrameAllocator, AddressSpace, HostCpu, Iommu) {
        let mut mem = MemorySystem::new(MemSysConfig {
            dram_latency: Cycles::new(latency),
            llc_enabled: llc,
            ..MemSysConfig::default()
        });
        let mut frames = FrameAllocator::linux_pool();
        let space = AddressSpace::new(&mut mem, &mut frames).unwrap();
        (mem, frames, space, HostCpu::default(), Iommu::default())
    }

    #[test]
    fn map_then_translate_through_iommu() {
        let (mut mem, mut frames, mut space, mut cpu, mut iommu) = setup(200, true);
        let va = space
            .alloc_buffer(&mut mem, &mut frames, 16 * PAGE_SIZE)
            .unwrap();
        let mut driver = IommuDriver::default();
        driver
            .attach(&mut cpu, &mut mem, &mut iommu, &mut frames, space.pscid())
            .unwrap();
        let (handle, cost) = driver
            .map_buffer(
                &mut cpu,
                &mut mem,
                &mut iommu,
                &space,
                &mut frames,
                va,
                16 * PAGE_SIZE,
            )
            .unwrap();
        assert_eq!(handle.pages, 16);
        assert_eq!(cost.pages, 16);
        assert_eq!(cost.pte_writes, 16);
        assert!(cost.cycles.raw() > 10_000);
        assert_eq!(driver.mapped_pages(), 16);

        // The IOMMU can now translate every page to the same physical page
        // the host sees.
        for i in 0..16u64 {
            let iova = Iova::from_virt(va + i * PAGE_SIZE + 7);
            let (pa, _) = iommu.translate(&mut mem, 1, iova, true).unwrap();
            assert_eq!(pa, space.translate(&mem, va + i * PAGE_SIZE + 7).unwrap());
        }
    }

    #[test]
    fn mapping_without_attach_fails() {
        let (mut mem, mut frames, mut space, mut cpu, mut iommu) = setup(200, true);
        let va = space
            .alloc_buffer(&mut mem, &mut frames, PAGE_SIZE)
            .unwrap();
        let mut driver = IommuDriver::default();
        assert!(matches!(
            driver.map_buffer(
                &mut cpu,
                &mut mem,
                &mut iommu,
                &space,
                &mut frames,
                va,
                PAGE_SIZE
            ),
            Err(Error::IommuNotPresent)
        ));
    }

    #[test]
    fn unmap_revokes_translations() {
        let (mut mem, mut frames, mut space, mut cpu, mut iommu) = setup(200, true);
        let va = space
            .alloc_buffer(&mut mem, &mut frames, 2 * PAGE_SIZE)
            .unwrap();
        let mut driver = IommuDriver::default();
        driver
            .attach(&mut cpu, &mut mem, &mut iommu, &mut frames, space.pscid())
            .unwrap();
        let (handle, _) = driver
            .map_buffer(
                &mut cpu,
                &mut mem,
                &mut iommu,
                &space,
                &mut frames,
                va,
                2 * PAGE_SIZE,
            )
            .unwrap();
        iommu.translate(&mut mem, 1, handle.iova, false).unwrap();
        driver
            .unmap_buffer(&mut cpu, &mut mem, &mut iommu, handle)
            .unwrap();
        assert!(iommu.translate(&mut mem, 1, handle.iova, false).is_err());
        assert_eq!(driver.mapped_pages(), 0);
    }

    #[test]
    fn mapping_cost_scales_less_than_copying_with_latency() {
        // Fig. 3: from 200 to 1000 cycles of DRAM latency the mapping time
        // grows by only ~2.1x because most driver accesses hit in the caches.
        let run = |latency| {
            let (mut mem, mut frames, mut space, mut cpu, mut iommu) = setup(latency, true);
            let va = space
                .alloc_buffer(&mut mem, &mut frames, 16 * PAGE_SIZE)
                .unwrap();
            let mut driver = IommuDriver::default();
            driver
                .attach(&mut cpu, &mut mem, &mut iommu, &mut frames, space.pscid())
                .unwrap();
            cpu.reset_elapsed();
            let (_, cost) = driver
                .map_buffer(
                    &mut cpu,
                    &mut mem,
                    &mut iommu,
                    &space,
                    &mut frames,
                    va,
                    16 * PAGE_SIZE,
                )
                .unwrap();
            cost.cycles.as_f64()
        };
        let ratio = run(1000) / run(200);
        assert!(
            ratio > 1.3 && ratio < 3.0,
            "mapping should scale sub-linearly with latency, got {ratio:.2}"
        );
    }

    #[test]
    fn mapping_leaves_ptes_in_the_llc() {
        let (mut mem, mut frames, mut space, mut cpu, mut iommu) = setup(1000, true);
        let va = space
            .alloc_buffer(&mut mem, &mut frames, 8 * PAGE_SIZE)
            .unwrap();
        let mut driver = IommuDriver::default();
        driver
            .attach(&mut cpu, &mut mem, &mut iommu, &mut frames, space.pscid())
            .unwrap();
        driver
            .map_buffer(
                &mut cpu,
                &mut mem,
                &mut iommu,
                &space,
                &mut frames,
                va,
                8 * PAGE_SIZE,
            )
            .unwrap();
        // Warm the device-context cache with one translation, then check that
        // a walk of a *different* page (IOTLB miss, but PTE lines written by
        // the driver) hits in the LLC: two orders of magnitude below the
        // 3x DRAM latency a cold walk would pay.
        iommu
            .translate(&mut mem, 1, Iova::from_virt(va), false)
            .unwrap();
        let (_, cycles) = iommu
            .translate(&mut mem, 1, Iova::from_virt(va + PAGE_SIZE), false)
            .unwrap();
        assert!(
            cycles.raw() < 300,
            "post-map walk should hit in the LLC, took {cycles}"
        );
    }
}
