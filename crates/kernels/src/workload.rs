//! The [`Workload`] abstraction shared by all benchmark kernels.
//!
//! A workload describes everything the offload runtime needs to run one
//! benchmark end to end: which buffers it uses, how to generate their initial
//! contents, what the correct final contents are, how to build the device
//! kernel once the buffers' device addresses are known, and how expensive the
//! kernel is when executed on the host core instead.

use serde::{Deserialize, Serialize};
use sva_cluster::DeviceKernel;
use sva_common::rng::DeterministicRng;
use sva_common::{Error, Iova, Result};
use sva_host::HostKernelCost;

/// Role of a buffer in a kernel.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BufferKind {
    /// Read by the kernel, never written.
    Input,
    /// Written by the kernel; previous contents are irrelevant.
    Output,
    /// Both read and written (e.g. `y` in `axpy`).
    InOut,
    /// Device-side scratch storage in DRAM (not verified against the
    /// reference, but must still be mapped / copied for the device).
    Scratch,
}

impl BufferKind {
    /// Returns `true` if the host must provide initial contents.
    pub const fn needs_init(self) -> bool {
        matches!(self, BufferKind::Input | BufferKind::InOut)
    }

    /// Returns `true` if the buffer holds results to verify.
    pub const fn is_result(self) -> bool {
        matches!(self, BufferKind::Output | BufferKind::InOut)
    }

    /// Returns `true` if the buffer must be copied to the device ahead of a
    /// copy-based offload.
    pub const fn copied_to_device(self) -> bool {
        matches!(self, BufferKind::Input | BufferKind::InOut)
    }

    /// Returns `true` if the buffer must be copied back after a copy-based
    /// offload.
    pub const fn copied_from_device(self) -> bool {
        matches!(self, BufferKind::Output | BufferKind::InOut)
    }
}

/// Description of one kernel buffer.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferSpec {
    /// Short name used in reports (e.g. `"A"`, `"x"`).
    pub name: &'static str,
    /// Number of `f32` elements.
    pub elems: usize,
    /// Role of the buffer.
    pub kind: BufferKind,
}

impl BufferSpec {
    /// Size of the buffer in bytes.
    pub const fn bytes(&self) -> u64 {
        (self.elems * 4) as u64
    }
}

/// A benchmark kernel, described independently of how it is offloaded.
pub trait Workload {
    /// Kernel name as used in the paper (e.g. `"gemm"`).
    fn name(&self) -> &'static str;

    /// Human-readable problem size (e.g. `"128 x 128"`).
    fn params(&self) -> String;

    /// The buffers the kernel operates on, in a fixed order. Device pointers
    /// are later passed to [`Workload::device_kernel`] in the same order.
    fn buffers(&self) -> Vec<BufferSpec>;

    /// Generates initial contents for every buffer (buffers whose kind does
    /// not need initialisation get zeros of the right length).
    fn init(&self, rng: &mut DeterministicRng) -> Vec<Vec<f32>>;

    /// Computes the expected final contents of every buffer from the initial
    /// contents (the host reference implementation).
    fn expected(&self, initial: &[Vec<f32>]) -> Vec<Vec<f32>>;

    /// Builds the device kernel given the device-visible base address of each
    /// buffer (IOVAs for zero-copy offload, bypass bus addresses for
    /// copy-based offload).
    fn device_kernel(&self, device_ptrs: &[Iova]) -> Box<dyn DeviceKernel>;

    /// Cost description for single-threaded host execution.
    fn host_cost(&self) -> HostKernelCost;

    /// Number of arithmetic operations, used for reporting intensity.
    fn flops(&self) -> u64;

    /// Verifies the final buffer contents against the expected contents.
    ///
    /// The default implementation compares result buffers element-wise with a
    /// relative tolerance of `1e-3` (device and reference accumulate in
    /// different orders).
    ///
    /// # Errors
    ///
    /// Returns [`Error::VerificationFailed`] naming the first mismatching
    /// element.
    fn verify(&self, expected: &[Vec<f32>], actual: &[Vec<f32>]) -> Result<()> {
        let specs = self.buffers();
        for (b, spec) in specs.iter().enumerate() {
            if !spec.kind.is_result() {
                continue;
            }
            for i in 0..spec.elems {
                let e = expected[b][i];
                let a = actual[b][i];
                let tol = 1e-3_f32 * e.abs().max(1.0);
                if (e - a).abs() > tol || !a.is_finite() {
                    return Err(Error::VerificationFailed {
                        kernel: format!("{} (buffer {})", self.name(), spec.name),
                        index: i,
                    });
                }
            }
        }
        Ok(())
    }

    /// Total bytes of all buffers that must be made visible to the device.
    fn device_bytes(&self) -> u64 {
        self.buffers().iter().map(|b| b.bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_kind_predicates() {
        assert!(BufferKind::Input.needs_init());
        assert!(BufferKind::InOut.needs_init());
        assert!(!BufferKind::Output.needs_init());
        assert!(BufferKind::Output.is_result());
        assert!(!BufferKind::Scratch.is_result());
        assert!(BufferKind::Input.copied_to_device());
        assert!(!BufferKind::Output.copied_to_device());
        assert!(BufferKind::InOut.copied_from_device());
        assert!(!BufferKind::Input.copied_from_device());
    }

    #[test]
    fn buffer_spec_bytes() {
        let spec = BufferSpec {
            name: "x",
            elems: 1024,
            kind: BufferKind::Input,
        };
        assert_eq!(spec.bytes(), 4096);
    }
}
