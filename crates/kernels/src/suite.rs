//! The benchmark suite registry (Table I of the paper).
//!
//! [`KernelSuite`] enumerates the five evaluated kernels with their paper
//! input sizes and descriptions, and constructs the corresponding
//! [`Workload`] objects. The experiment harness iterates this registry to
//! regenerate the tables and figures.

use serde::{Deserialize, Serialize};

use crate::axpy::AxpyWorkload;
use crate::gemm::GemmWorkload;
use crate::gesummv::GesummvWorkload;
use crate::heat3d::Heat3dWorkload;
use crate::sort::SortWorkload;
use crate::workload::Workload;

/// The kernels of the evaluation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelKind {
    /// Generic vector-vector addition (`y = a*x + y`).
    Axpy,
    /// Generic matrix-matrix multiplication.
    Gemm,
    /// Generic matrix-vector multiplication (`y = αAx + βBx`).
    Gesummv,
    /// 3-D heat propagation equation (seven-point stencil).
    Heat3d,
    /// Parallel merge sort.
    Sort,
}

impl KernelKind {
    /// All kernels, in the order of Table I.
    pub const ALL: [KernelKind; 5] = [
        KernelKind::Gemm,
        KernelKind::Gesummv,
        KernelKind::Heat3d,
        KernelKind::Axpy,
        KernelKind::Sort,
    ];

    /// The four kernels reported in Table II / Figure 4 (axpy is used for
    /// the offloading and PTW experiments instead).
    pub const TABLE2: [KernelKind; 4] = [
        KernelKind::Gemm,
        KernelKind::Gesummv,
        KernelKind::Heat3d,
        KernelKind::Sort,
    ];

    /// Kernel name as printed in the paper.
    pub const fn name(self) -> &'static str {
        match self {
            KernelKind::Axpy => "axpy",
            KernelKind::Gemm => "gemm",
            KernelKind::Gesummv => "gesummv",
            KernelKind::Heat3d => "heat3d",
            KernelKind::Sort => "merge sort",
        }
    }

    /// The paper's input-size string (Table I).
    pub const fn input_size(self) -> &'static str {
        match self {
            KernelKind::Axpy => "32768",
            KernelKind::Gemm => "128 x 128",
            KernelKind::Gesummv => "512 x 512",
            KernelKind::Heat3d => "64 x 64 x 64",
            KernelKind::Sort => "65536",
        }
    }

    /// The paper's one-line description (Table I).
    pub const fn description(self) -> &'static str {
        match self {
            KernelKind::Axpy => "Generic vector-vector addition.",
            KernelKind::Gemm => "Generic matrix-matrix multiplication.",
            KernelKind::Gesummv => "Generic matrix-vector multiplication.",
            KernelKind::Heat3d => "3D heat propagation equation.",
            KernelKind::Sort => "Merge sort algorithm.",
        }
    }

    /// Builds the workload at the paper's input size.
    pub fn paper_workload(self) -> Box<dyn Workload> {
        match self {
            KernelKind::Axpy => Box::new(AxpyWorkload::paper()),
            KernelKind::Gemm => Box::new(GemmWorkload::paper()),
            KernelKind::Gesummv => Box::new(GesummvWorkload::paper()),
            KernelKind::Heat3d => Box::new(Heat3dWorkload::paper()),
            KernelKind::Sort => Box::new(SortWorkload::paper()),
        }
    }

    /// Builds a reduced-size workload suitable for fast functional tests and
    /// continuous integration (same code paths, smaller data).
    pub fn small_workload(self) -> Box<dyn Workload> {
        match self {
            KernelKind::Axpy => Box::new(AxpyWorkload::with_elems(6_000)),
            KernelKind::Gemm => Box::new(GemmWorkload::with_dim(64)),
            KernelKind::Gesummv => Box::new(GesummvWorkload::with_dim(128)),
            KernelKind::Heat3d => Box::new(Heat3dWorkload::with_dim(16, 2)),
            KernelKind::Sort => Box::new(SortWorkload::with_elems(16_384)),
        }
    }
}

/// The whole suite, as a convenience collection.
#[derive(Clone, Debug, Default)]
pub struct KernelSuite;

impl KernelSuite {
    /// Rows of Table I: `(name, input size, description)`.
    pub fn table1_rows() -> Vec<(&'static str, &'static str, &'static str)> {
        KernelKind::ALL
            .iter()
            .map(|k| (k.name(), k.input_size(), k.description()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table1() {
        let rows = KernelSuite::table1_rows();
        assert_eq!(rows.len(), 5);
        assert!(rows
            .iter()
            .any(|(n, s, _)| *n == "gemm" && *s == "128 x 128"));
        assert!(rows
            .iter()
            .any(|(n, s, _)| *n == "merge sort" && *s == "65536"));
    }

    #[test]
    fn paper_workloads_have_expected_sizes() {
        for kind in KernelKind::ALL {
            let wl = kind.paper_workload();
            assert!(!wl.buffers().is_empty());
            assert!(wl.device_bytes() > 0);
            assert!(wl.flops() > 0);
        }
        assert_eq!(
            KernelKind::Gemm.paper_workload().device_bytes(),
            3 * 64 * 1024
        );
        assert_eq!(
            KernelKind::Heat3d.paper_workload().device_bytes(),
            2 * 1024 * 1024
        );
    }

    #[test]
    fn small_workloads_are_smaller() {
        for kind in KernelKind::ALL {
            let small = kind.small_workload().device_bytes();
            let paper = kind.paper_workload().device_bytes();
            assert!(small < paper, "{kind:?}: {small} !< {paper}");
        }
    }

    #[test]
    fn init_expected_verify_roundtrip_for_every_kernel() {
        use sva_common::rng::DeterministicRng;
        for kind in KernelKind::ALL {
            let wl = kind.small_workload();
            let mut rng = DeterministicRng::new(42);
            let init = wl.init(&mut rng);
            assert_eq!(init.len(), wl.buffers().len());
            for (buf, spec) in init.iter().zip(wl.buffers()) {
                assert_eq!(buf.len(), spec.elems, "{kind:?} buffer {}", spec.name);
            }
            let expected = wl.expected(&init);
            // The reference output must verify against itself.
            wl.verify(&expected, &expected).unwrap();
            // A corrupted result buffer must be rejected.
            let mut broken = expected.clone();
            if let Some(result_idx) = wl
                .buffers()
                .iter()
                .position(|b| b.kind.is_result() && b.elems > 0)
            {
                broken[result_idx][0] += 1.0e6;
                assert!(wl.verify(&expected, &broken).is_err(), "{kind:?}");
            }
        }
    }
}
