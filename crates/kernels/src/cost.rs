//! Calibration constants mapping operation counts to cluster cycles.
//!
//! The compute portion of each kernel is charged through
//! [`sva_cluster::PeCost`] using the constants below. They are *calibration*
//! values, not measurements: they were chosen so the baseline (no IOMMU)
//! runtimes of Table II land in the same order of magnitude as the paper's
//! FPGA measurements, with the relative arithmetic intensity of the kernels
//! preserved (gemm most compute-bound, heat3d most memory-bound). The
//! evaluation criterion of the reproduction is the *shape* of the results —
//! relative overheads, trends with DRAM latency, effect of the LLC — which is
//! insensitive to moderate changes in these constants (see EXPERIMENTS.md).

use sva_cluster::PeCost;

/// Cluster cycles one Snitch PE spends per multiply-accumulate in the inner
/// gemm loop (FPU pipelining is good for gemm, loop overhead modest).
pub const GEMM_CYCLES_PER_MAC: f64 = 2.8;

/// Cluster cycles per multiply-accumulate for the matrix-vector kernels
/// (gesummv); less reuse means more address generation per FLOP.
pub const GESUMMV_CYCLES_PER_MAC: f64 = 3.0;

/// Cluster cycles per grid-point update for the heat3d stencil (seven-point
/// stencil: ~8 FLOPs plus neighbour addressing).
pub const HEAT3D_CYCLES_PER_POINT: f64 = 8.5;

/// Cluster cycles per element per axpy update (one FMA, two loads, one
/// store from TCDM).
pub const AXPY_CYCLES_PER_ELEM: f64 = 6.0;

/// Cluster cycles per element per local-sort comparison step.
pub const SORT_CYCLES_PER_CMP: f64 = 20.0;

/// Cluster cycles per element merged in a merge pass (merging parallelises
/// poorly across PEs, so the per-element cost is charged at reduced
/// parallel efficiency through [`sort_merge_cost`]).
pub const SORT_CYCLES_PER_MERGE_ELEM: f64 = 12.0;

/// Fixed cluster cycles of overhead per parallel region (barrier, loop
/// setup).
pub const REGION_OVERHEAD: u64 = 150;

/// Cost model for the gemm inner kernel.
pub fn gemm_cost() -> PeCost {
    PeCost::new(GEMM_CYCLES_PER_MAC, REGION_OVERHEAD)
}

/// Cost model for gesummv.
pub fn gesummv_cost() -> PeCost {
    PeCost::new(GESUMMV_CYCLES_PER_MAC, REGION_OVERHEAD)
}

/// Cost model for heat3d.
pub fn heat3d_cost() -> PeCost {
    PeCost::new(HEAT3D_CYCLES_PER_POINT, REGION_OVERHEAD)
}

/// Cost model for axpy.
pub fn axpy_cost() -> PeCost {
    PeCost::new(AXPY_CYCLES_PER_ELEM, REGION_OVERHEAD)
}

/// Cost model for the local sort phase of the sort kernel.
pub fn sort_local_cost() -> PeCost {
    PeCost::new(SORT_CYCLES_PER_CMP, REGION_OVERHEAD)
}

/// Cost model for the merge phase of the sort kernel (limited parallelism:
/// a pair-wise merge keeps only part of the cluster busy).
pub fn sort_merge_cost() -> PeCost {
    PeCost::new(SORT_CYCLES_PER_MERGE_ELEM, REGION_OVERHEAD)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn gemm_is_the_most_efficient_per_op() {
        assert!(GEMM_CYCLES_PER_MAC <= GESUMMV_CYCLES_PER_MAC);
        assert!(GEMM_CYCLES_PER_MAC < HEAT3D_CYCLES_PER_POINT);
    }

    #[test]
    fn cost_models_produce_nonzero_cycles() {
        for cost in [
            gemm_cost(),
            gesummv_cost(),
            heat3d_cost(),
            axpy_cost(),
            sort_local_cost(),
        ] {
            assert!(cost.parallel_region(1000).raw() > 0);
        }
    }
}
