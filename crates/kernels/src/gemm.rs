//! `gemm`: single-precision general matrix-matrix multiplication
//! `C = A × B` (RajaPERF / PolyBench).
//!
//! The most arithmetically intense kernel of the suite (O(n³) FLOPs over
//! O(n²) data). The device implementation tiles `C` into 32 × 32 blocks; for
//! each block it fetches the corresponding 32-row panel of `A` (contiguous)
//! and the 32-column panel of `B` (one short burst per matrix row — the
//! strided access pattern that makes the IOMMU's per-page translation
//! visible), computes the block with all eight PEs and writes it back row by
//! row.

use sva_cluster::{DeviceKernel, DmaRequest, Tcdm, TileIo};
use sva_common::rng::DeterministicRng;
use sva_common::{Cycles, Iova, Result};
use sva_host::HostKernelCost;

use crate::cost;
use crate::workload::{BufferKind, BufferSpec, Workload};

/// Side length of a square `C` block computed per tile.
const BLOCK: usize = 32;

/// The gemm workload descriptor (square matrices).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct GemmWorkload {
    /// Matrix dimension (the paper uses 128).
    pub n: usize,
}

impl GemmWorkload {
    /// The paper's configuration: 128 × 128 matrices.
    pub fn paper() -> Self {
        Self { n: 128 }
    }

    /// A gemm of dimension `n` (must be a multiple of the 32-element block).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of 32.
    pub fn with_dim(n: usize) -> Self {
        assert!(
            n > 0 && n % BLOCK == 0,
            "gemm dimension must be a multiple of 32"
        );
        Self { n }
    }

    fn blocks(&self) -> usize {
        self.n / BLOCK
    }
}

impl Workload for GemmWorkload {
    fn name(&self) -> &'static str {
        "gemm"
    }

    fn params(&self) -> String {
        format!("{} x {}", self.n, self.n)
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        let elems = self.n * self.n;
        vec![
            BufferSpec {
                name: "A",
                elems,
                kind: BufferKind::Input,
            },
            BufferSpec {
                name: "B",
                elems,
                kind: BufferKind::Input,
            },
            BufferSpec {
                name: "C",
                elems,
                kind: BufferKind::Output,
            },
        ]
    }

    fn init(&self, rng: &mut DeterministicRng) -> Vec<Vec<f32>> {
        let elems = self.n * self.n;
        let mut a = vec![0.0f32; elems];
        let mut b = vec![0.0f32; elems];
        rng.fill_f32(&mut a, -1.0, 1.0);
        rng.fill_f32(&mut b, -1.0, 1.0);
        vec![a, b, vec![0.0f32; elems]]
    }

    fn expected(&self, initial: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let n = self.n;
        let a = &initial[0];
        let b = &initial[1];
        let mut c = vec![0.0f32; n * n];
        for i in 0..n {
            for k in 0..n {
                let aik = a[i * n + k];
                for j in 0..n {
                    c[i * n + j] += aik * b[k * n + j];
                }
            }
        }
        vec![a.clone(), b.clone(), c]
    }

    fn device_kernel(&self, device_ptrs: &[Iova]) -> Box<dyn DeviceKernel> {
        Box::new(GemmDevice {
            n: self.n,
            a: device_ptrs[0],
            b: device_ptrs[1],
            c: device_ptrs[2],
        })
    }

    fn host_cost(&self) -> HostKernelCost {
        let n = self.n as u64;
        HostKernelCost {
            ops: n * n * n,
            cycles_per_op: 4.5,
            // The host re-reads A and B once per block row.
            read_passes: self.blocks() as u32,
            write_passes: 1,
        }
    }

    fn flops(&self) -> u64 {
        2 * (self.n as u64).pow(3)
    }
}

/// Device-side blocked gemm.
struct GemmDevice {
    n: usize,
    a: Iova,
    b: Iova,
    c: Iova,
}

impl GemmDevice {
    fn blocks(&self) -> usize {
        self.n / BLOCK
    }

    /// TCDM layout of one buffer set: A panel, then B panel, then C block.
    fn tcdm_offsets(&self, tile: usize) -> (u64, u64, u64) {
        let a_panel = (BLOCK * self.n * 4) as u64;
        let b_panel = (BLOCK * self.n * 4) as u64;
        let c_block = (BLOCK * BLOCK * 4) as u64;
        let set = (tile % 2) as u64;
        let base = set * (a_panel + b_panel + c_block);
        (base, base + a_panel, base + a_panel + b_panel)
    }

    fn block_coords(&self, tile: usize) -> (usize, usize) {
        (tile / self.blocks(), tile % self.blocks())
    }
}

impl DeviceKernel for GemmDevice {
    fn name(&self) -> &str {
        "gemm"
    }

    fn num_tiles(&self) -> usize {
        self.blocks() * self.blocks()
    }

    fn tile_io(&self, tile: usize) -> TileIo {
        let n = self.n;
        let (bi, bj) = self.block_coords(tile);
        let (a_off, b_off, c_off) = self.tcdm_offsets(tile);

        let mut inputs = Vec::with_capacity(1 + n);
        // A panel: rows bi*BLOCK .. bi*BLOCK+BLOCK are contiguous in row-major A.
        inputs.push(DmaRequest::input(
            self.a + (bi * BLOCK * n * 4) as u64,
            a_off,
            (BLOCK * n * 4) as u64,
        ));
        // B panel: for every row k of B, the 32-column slice [bj*BLOCK ..) —
        // one short strided burst per row.
        for k in 0..n {
            inputs.push(DmaRequest::input(
                self.b + ((k * n + bj * BLOCK) * 4) as u64,
                b_off + (k * BLOCK * 4) as u64,
                (BLOCK * 4) as u64,
            ));
        }
        // C block: one short burst per row of the block.
        let mut outputs = Vec::with_capacity(BLOCK);
        for i in 0..BLOCK {
            outputs.push(DmaRequest::output(
                self.c + (((bi * BLOCK + i) * n + bj * BLOCK) * 4) as u64,
                c_off + (i * BLOCK * 4) as u64,
                (BLOCK * 4) as u64,
            ));
        }
        TileIo { inputs, outputs }
    }

    fn compute_tile(&mut self, tile: usize, tcdm: &mut Tcdm) -> Result<Cycles> {
        let n = self.n;
        let (a_off, b_off, c_off) = self.tcdm_offsets(tile);
        for i in 0..BLOCK {
            for j in 0..BLOCK {
                let mut acc = 0.0f32;
                for k in 0..n {
                    let a = tcdm.read_f32(a_off + ((i * n + k) * 4) as u64);
                    let b = tcdm.read_f32(b_off + ((k * BLOCK + j) * 4) as u64);
                    acc += a * b;
                }
                tcdm.write_f32(c_off + ((i * BLOCK + j) * 4) as u64, acc);
            }
        }
        let macs = (BLOCK * BLOCK * n) as u64;
        Ok(cost::gemm_cost().parallel_region(macs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_identity_multiplication() {
        let wl = GemmWorkload::with_dim(32);
        let n = 32;
        let mut a = vec![0.0f32; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        let mut b = vec![0.0f32; n * n];
        for (i, v) in b.iter_mut().enumerate() {
            *v = i as f32;
        }
        let exp = wl.expected(&[a, b.clone(), vec![0.0; n * n]]);
        assert_eq!(exp[2], b);
    }

    #[test]
    fn paper_configuration() {
        let wl = GemmWorkload::paper();
        assert_eq!(wl.n, 128);
        assert_eq!(wl.flops(), 2 * 128u64.pow(3));
        assert_eq!(wl.device_bytes(), 3 * 128 * 128 * 4);
    }

    #[test]
    fn device_tiles_cover_all_of_c_exactly_once() {
        let wl = GemmWorkload::paper();
        let dev = wl.device_kernel(&[
            Iova::new(0x1000_0000),
            Iova::new(0x2000_0000),
            Iova::new(0x3000_0000),
        ]);
        assert_eq!(dev.num_tiles(), 16);
        let out_bytes: u64 = (0..dev.num_tiles())
            .map(|t| dev.tile_io(t).output_bytes())
            .sum();
        assert_eq!(out_bytes, (128 * 128 * 4) as u64);
    }

    #[test]
    fn b_panel_is_fetched_with_strided_bursts() {
        let wl = GemmWorkload::paper();
        let dev = wl.device_kernel(&[
            Iova::new(0x1000_0000),
            Iova::new(0x2000_0000),
            Iova::new(0x3000_0000),
        ]);
        let io = dev.tile_io(0);
        // 1 contiguous A panel + 128 strided B rows.
        assert_eq!(io.inputs.len(), 129);
        assert_eq!(io.inputs[1].len, 128);
        assert_eq!(io.input_bytes(), (32 * 128 * 4 + 128 * 32 * 4) as u64);
    }

    #[test]
    #[should_panic(expected = "multiple of 32")]
    fn dimension_must_be_block_multiple() {
        let _ = GemmWorkload::with_dim(100);
    }
}
