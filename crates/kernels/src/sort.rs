//! `sort`: parallel merge sort of 65 536 single-precision values (RajaPERF
//! *algorithm* group).
//!
//! The non-linear kernel of the suite. The device implementation follows the
//! classic PMCA two-phase scheme:
//!
//! 1. **local sort** — the array is cut into TCDM-sized chunks, each chunk is
//!    DMA-ed in, sorted by the PEs and written back;
//! 2. **merge passes** — `log2(chunks)` passes merge pairs of sorted runs,
//!    ping-ponging between the data array and an auxiliary array in DRAM.
//!    Each merge tile produces one chunk-sized block of the output; the input
//!    ranges contributing to that block are determined with a merge-path
//!    partition (in the real kernel a cheap binary search performed by the
//!    DMA core; here it is computed from the kernel's functional mirror of
//!    the run contents).
//!
//! Every pass streams the whole 256 KiB array in and out of the cluster, so
//! the kernel is moderately memory-bound and — like the linear kernels —
//! exposes the IOMMU translation cost when the page-table walks miss the LLC.

use sva_cluster::{DeviceKernel, DmaRequest, Tcdm, TileIo};
use sva_common::rng::DeterministicRng;
use sva_common::{Cycles, Error, Iova, Result};
use sva_host::HostKernelCost;

use crate::cost;
use crate::workload::{BufferKind, BufferSpec, Workload};

/// Elements per TCDM chunk (16 KiB).
const CHUNK: usize = 4096;

/// The sort workload descriptor.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SortWorkload {
    /// Number of elements to sort (a power-of-two multiple of the chunk).
    pub n: usize,
}

impl SortWorkload {
    /// The paper's configuration: 65 536 elements.
    pub fn paper() -> Self {
        Self::with_elems(65_536)
    }

    /// A sort of `n` elements.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power-of-two multiple of the 4096-element
    /// chunk.
    pub fn with_elems(n: usize) -> Self {
        assert!(
            n >= CHUNK && n % CHUNK == 0 && (n / CHUNK).is_power_of_two(),
            "sort size must be a power-of-two multiple of 4096"
        );
        Self { n }
    }

    fn chunks(&self) -> usize {
        self.n / CHUNK
    }

    fn passes(&self) -> usize {
        self.chunks().trailing_zeros() as usize
    }
}

impl Workload for SortWorkload {
    fn name(&self) -> &'static str {
        "sort"
    }

    fn params(&self) -> String {
        format!("{}", self.n)
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        vec![
            BufferSpec {
                name: "data",
                elems: self.n,
                kind: BufferKind::InOut,
            },
            BufferSpec {
                name: "aux",
                elems: self.n,
                kind: BufferKind::Scratch,
            },
        ]
    }

    fn init(&self, rng: &mut DeterministicRng) -> Vec<Vec<f32>> {
        let mut data = vec![0.0f32; self.n];
        rng.fill_f32(&mut data, 0.0, 1.0e6);
        vec![data, vec![0.0f32; self.n]]
    }

    fn expected(&self, initial: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let mut sorted = initial[0].clone();
        sorted.sort_by(f32::total_cmp);
        vec![sorted, initial[1].clone()]
    }

    fn device_kernel(&self, device_ptrs: &[Iova]) -> Box<dyn DeviceKernel> {
        Box::new(SortDevice {
            n: self.n,
            data: device_ptrs[0],
            aux: device_ptrs[1],
            mirror_data: vec![0.0f32; self.n],
            mirror_aux: vec![0.0f32; self.n],
        })
    }

    fn host_cost(&self) -> HostKernelCost {
        let n = self.n as u64;
        let log_n = (self.n as f64).log2().ceil() as u64;
        HostKernelCost {
            ops: n * log_n,
            cycles_per_op: 9.0,
            read_passes: (self.passes() + 1) as u32,
            write_passes: (self.passes() + 1) as u32,
        }
    }

    fn flops(&self) -> u64 {
        // Comparison-based: report the comparison count as the "operation"
        // count used for intensity reporting.
        self.n as u64 * (self.n as f64).log2().ceil() as u64
    }
}

/// Device-side two-phase parallel sort.
struct SortDevice {
    n: usize,
    data: Iova,
    aux: Iova,
    /// Functional mirror of the `data` array, maintained by the compute
    /// phases (stands in for the binary-search pre-pass the DMA core runs on
    /// DRAM-resident data to compute merge partitions).
    mirror_data: Vec<f32>,
    /// Functional mirror of the auxiliary array.
    mirror_aux: Vec<f32>,
}

impl SortDevice {
    fn chunks(&self) -> usize {
        self.n / CHUNK
    }

    fn passes(&self) -> usize {
        self.chunks().trailing_zeros() as usize
    }

    /// Decodes a tile index into (phase, block): phase 0 is the local sort,
    /// phases 1..=passes are merge passes.
    fn decode(&self, tile: usize) -> (usize, usize) {
        (tile / self.chunks(), tile % self.chunks())
    }

    /// Source/destination external arrays and mirrors for a merge pass.
    fn pass_arrays(&self, pass: usize) -> (Iova, Iova) {
        if pass % 2 == 1 {
            (self.data, self.aux)
        } else {
            (self.aux, self.data)
        }
    }

    fn pass_mirrors(&self, pass: usize) -> (&[f32], &[f32]) {
        if pass % 2 == 1 {
            (&self.mirror_data, &self.mirror_aux)
        } else {
            (&self.mirror_aux, &self.mirror_data)
        }
    }

    /// Merge-path partition: how many elements of run A are among the first
    /// `k` elements of the merge of runs A and B.
    fn merge_partition(a: &[f32], b: &[f32], k: usize) -> usize {
        let mut lo = k.saturating_sub(b.len());
        let mut hi = k.min(a.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            let bj = k - mid - 1;
            if bj < b.len() && a[mid] < b[bj] {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Computes, for merge tile `(pass, block)`, the source ranges
    /// `(a_start, a_len, b_start, b_len)` in elements relative to the source
    /// array.
    fn merge_ranges(&self, pass: usize, block: usize) -> (usize, usize, usize, usize) {
        let run_len = CHUNK << (pass - 1);
        let (src_mirror, _) = self.pass_mirrors(pass);
        let out_start = block * CHUNK;
        let pair_base = out_start / (2 * run_len) * (2 * run_len);
        let a = &src_mirror[pair_base..pair_base + run_len];
        let b = &src_mirror[pair_base + run_len..pair_base + 2 * run_len];
        let off = out_start - pair_base;
        let ai0 = Self::merge_partition(a, b, off);
        let ai1 = Self::merge_partition(a, b, off + CHUNK);
        let bi0 = off - ai0;
        let bi1 = off + CHUNK - ai1;
        (
            pair_base + ai0,
            ai1 - ai0,
            pair_base + run_len + bi0,
            bi1 - bi0,
        )
    }

    /// TCDM layout of one buffer set: run-A segment, run-B segment, output.
    fn tcdm_offsets(&self, tile: usize) -> (u64, u64, u64) {
        let chunk_bytes = (CHUNK * 4) as u64;
        let base = (tile % 2) as u64 * 3 * chunk_bytes;
        (base, base + chunk_bytes, base + 2 * chunk_bytes)
    }
}

impl DeviceKernel for SortDevice {
    fn name(&self) -> &str {
        "sort"
    }

    fn num_tiles(&self) -> usize {
        (1 + self.passes()) * self.chunks()
    }

    fn tile_io(&self, tile: usize) -> TileIo {
        let (phase, block) = self.decode(tile);
        let chunk_bytes = (CHUNK * 4) as u64;
        let (a_off, b_off, out_off) = self.tcdm_offsets(tile);
        if phase == 0 {
            // Local sort: one chunk in, the sorted chunk out, in place.
            let ext = self.data + (block * CHUNK * 4) as u64;
            return TileIo {
                inputs: vec![DmaRequest::input(ext, a_off, chunk_bytes)],
                outputs: vec![DmaRequest::output(ext, out_off, chunk_bytes)],
            };
        }
        let (src, dst) = self.pass_arrays(phase);
        let (a_start, a_len, b_start, b_len) = self.merge_ranges(phase, block);
        let mut inputs = Vec::with_capacity(2);
        if a_len > 0 {
            inputs.push(DmaRequest::input(
                src + (a_start * 4) as u64,
                a_off,
                (a_len * 4) as u64,
            ));
        }
        if b_len > 0 {
            inputs.push(DmaRequest::input(
                src + (b_start * 4) as u64,
                b_off,
                (b_len * 4) as u64,
            ));
        }
        TileIo {
            inputs,
            outputs: vec![DmaRequest::output(
                dst + (block * CHUNK * 4) as u64,
                out_off,
                chunk_bytes,
            )],
        }
    }

    fn compute_tile(&mut self, tile: usize, tcdm: &mut Tcdm) -> Result<Cycles> {
        let (phase, block) = self.decode(tile);
        let (a_off, b_off, out_off) = self.tcdm_offsets(tile);

        if phase == 0 {
            // Local sort of one chunk.
            let mut chunk = vec![0.0f32; CHUNK];
            tcdm.read_f32_slice(a_off, &mut chunk)?;
            chunk.sort_by(f32::total_cmp);
            tcdm.write_f32_slice(out_off, &chunk)?;
            self.mirror_data[block * CHUNK..(block + 1) * CHUNK].copy_from_slice(&chunk);
            let comparisons = (CHUNK as u64) * (CHUNK as f64).log2().ceil() as u64;
            return Ok(cost::sort_local_cost().parallel_region(comparisons));
        }

        // Merge one output block from the two partitioned input segments.
        let (_a_start, a_len, _b_start, b_len) = self.merge_ranges(phase, block);
        if a_len + b_len != CHUNK {
            return Err(Error::InvalidConfig {
                reason: format!(
                    "merge partition of tile {tile} covers {} elements instead of {CHUNK}",
                    a_len + b_len
                ),
            });
        }
        let mut a = vec![0.0f32; a_len];
        let mut b = vec![0.0f32; b_len];
        tcdm.read_f32_slice(a_off, &mut a)?;
        tcdm.read_f32_slice(b_off, &mut b)?;
        let mut out = Vec::with_capacity(CHUNK);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if a[i] <= b[j] {
                out.push(a[i]);
                i += 1;
            } else {
                out.push(b[j]);
                j += 1;
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        tcdm.write_f32_slice(out_off, &out)?;

        // Update the destination mirror.
        let dst_is_aux = self.pass_arrays(phase).1 == self.aux;
        let dst_mirror = if dst_is_aux {
            &mut self.mirror_aux
        } else {
            &mut self.mirror_data
        };
        dst_mirror[block * CHUNK..(block + 1) * CHUNK].copy_from_slice(&out);

        Ok(cost::sort_merge_cost().parallel_region(CHUNK as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sorts_ascending() {
        let wl = SortWorkload::with_elems(4096);
        let mut rng = DeterministicRng::new(1);
        let init = wl.init(&mut rng);
        let exp = wl.expected(&init);
        assert!(exp[0].windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(exp[0].len(), 4096);
    }

    #[test]
    fn paper_configuration_has_five_phases() {
        let wl = SortWorkload::paper();
        assert_eq!(wl.chunks(), 16);
        assert_eq!(wl.passes(), 4);
        let dev = wl.device_kernel(&[Iova::new(0x1000_0000), Iova::new(0x2000_0000)]);
        assert_eq!(dev.num_tiles(), 80);
    }

    #[test]
    fn merge_partition_splits_correctly() {
        let a = [1.0f32, 3.0, 5.0, 7.0];
        let b = [2.0f32, 4.0, 6.0, 8.0];
        // First 4 elements of the merge are 1,2,3,4: two from each run.
        assert_eq!(SortDevice::merge_partition(&a, &b, 4), 2);
        assert_eq!(SortDevice::merge_partition(&a, &b, 0), 0);
        assert_eq!(SortDevice::merge_partition(&a, &b, 8), 4);
        // Skewed case: all of a precedes b.
        let a2 = [1.0f32, 2.0];
        let b2 = [10.0f32, 20.0];
        assert_eq!(SortDevice::merge_partition(&a2, &b2, 2), 2);
        assert_eq!(SortDevice::merge_partition(&b2, &a2, 2), 0);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_chunk_count_rejected() {
        let _ = SortWorkload::with_elems(3 * 4096);
    }

    #[test]
    fn local_sort_tiles_are_in_place() {
        let wl = SortWorkload::paper();
        let dev = wl.device_kernel(&[Iova::new(0x1000_0000), Iova::new(0x2000_0000)]);
        let io = dev.tile_io(3);
        assert_eq!(io.inputs.len(), 1);
        assert_eq!(io.outputs.len(), 1);
        assert_eq!(io.inputs[0].ext_addr, io.outputs[0].ext_addr);
        assert_eq!(io.input_bytes(), 16 * 1024);
    }
}
