//! `sort`: parallel merge sort of 65 536 single-precision values (RajaPERF
//! *algorithm* group).
//!
//! The non-linear kernel of the suite. The device implementation follows the
//! classic PMCA two-phase scheme:
//!
//! 1. **local sort** — the array is cut into TCDM-sized chunks, each chunk is
//!    DMA-ed in, sorted by the PEs and written back;
//! 2. **merge passes** — `log2(chunks)` passes merge pairs of sorted runs,
//!    ping-ponging between the data array and an auxiliary array in DRAM.
//!    Each merge tile produces one chunk-sized block of the output; the input
//!    ranges contributing to that block are determined with a merge-path
//!    partition — a cheap binary search the DMA core performs on the
//!    DRAM-resident run data, modelled in [`DeviceKernel::plan_tile`] as
//!    untimed functional reads of the **shared** external memory
//!    (`TileCtx`). Because the partitions are computed from shared memory —
//!    not from a per-kernel-instance mirror — the kernel shards correctly
//!    across multiple clusters: every shard sees the runs exactly as the
//!    previous pass (wherever it executed) left them.
//!
//! Every pass streams the whole 256 KiB array in and out of the cluster, so
//! the kernel is moderately memory-bound and — like the linear kernels —
//! exposes the IOMMU translation cost when the page-table walks miss the LLC.

use std::collections::HashMap;

use sva_cluster::{DeviceKernel, DmaRequest, Tcdm, TileCtx, TileIo};
use sva_common::rng::DeterministicRng;
use sva_common::{Cycles, Error, Iova, Result};
use sva_host::HostKernelCost;

use crate::cost;
use crate::workload::{BufferKind, BufferSpec, Workload};

/// Elements per TCDM chunk (16 KiB).
const CHUNK: usize = 4096;

/// The sort workload descriptor.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SortWorkload {
    /// Number of elements to sort (a power-of-two multiple of the chunk).
    pub n: usize,
}

impl SortWorkload {
    /// The paper's configuration: 65 536 elements.
    pub fn paper() -> Self {
        Self::with_elems(65_536)
    }

    /// A sort of `n` elements.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power-of-two multiple of the 4096-element
    /// chunk, or if it splits into exactly two chunks: with two chunks the
    /// single merge tile's inputs depend on the immediately preceding
    /// tile's output, which the double-buffered executor prefetches before
    /// that output exists. Any other chunk count keeps a full chunk of
    /// slack between a pass's first reads and the previous pass's last
    /// write (one chunk needs no merge at all).
    pub fn with_elems(n: usize) -> Self {
        assert!(
            n >= CHUNK && n % CHUNK == 0 && (n / CHUNK).is_power_of_two(),
            "sort size must be a power-of-two multiple of 4096"
        );
        assert!(
            n / CHUNK != 2,
            "a two-chunk sort cannot be double-buffered (the merge prefetch \
             would read the preceding tile's unwritten output); use one \
             chunk or at least four"
        );
        Self { n }
    }

    fn chunks(&self) -> usize {
        self.n / CHUNK
    }

    fn passes(&self) -> usize {
        self.chunks().trailing_zeros() as usize
    }
}

impl Workload for SortWorkload {
    fn name(&self) -> &'static str {
        "sort"
    }

    fn params(&self) -> String {
        format!("{}", self.n)
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        vec![
            BufferSpec {
                name: "data",
                elems: self.n,
                kind: BufferKind::InOut,
            },
            BufferSpec {
                name: "aux",
                elems: self.n,
                kind: BufferKind::Scratch,
            },
        ]
    }

    fn init(&self, rng: &mut DeterministicRng) -> Vec<Vec<f32>> {
        let mut data = vec![0.0f32; self.n];
        rng.fill_f32(&mut data, 0.0, 1.0e6);
        vec![data, vec![0.0f32; self.n]]
    }

    fn expected(&self, initial: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let mut sorted = initial[0].clone();
        sorted.sort_by(f32::total_cmp);
        vec![sorted, initial[1].clone()]
    }

    fn device_kernel(&self, device_ptrs: &[Iova]) -> Box<dyn DeviceKernel> {
        Box::new(SortDevice {
            n: self.n,
            data: device_ptrs[0],
            aux: device_ptrs[1],
            ranges: HashMap::new(),
        })
    }

    fn host_cost(&self) -> HostKernelCost {
        let n = self.n as u64;
        let log_n = (self.n as f64).log2().ceil() as u64;
        HostKernelCost {
            ops: n * log_n,
            cycles_per_op: 9.0,
            read_passes: (self.passes() + 1) as u32,
            write_passes: (self.passes() + 1) as u32,
        }
    }

    fn flops(&self) -> u64 {
        // Comparison-based: report the comparison count as the "operation"
        // count used for intensity reporting.
        self.n as u64 * (self.n as f64).log2().ceil() as u64
    }
}

/// Device-side two-phase parallel sort.
struct SortDevice {
    n: usize,
    data: Iova,
    aux: Iova,
    /// Merge-path partitions per merge tile, computed by the plan pre-pass
    /// ([`DeviceKernel::plan_tile`]) from the shared functional memory and
    /// consumed by [`DeviceKernel::tile_io`]/[`DeviceKernel::compute_tile`]:
    /// `(a_start, a_len, b_start, b_len)` in elements of the source array.
    ranges: HashMap<usize, (usize, usize, usize, usize)>,
}

impl SortDevice {
    fn chunks(&self) -> usize {
        self.n / CHUNK
    }

    fn passes(&self) -> usize {
        self.chunks().trailing_zeros() as usize
    }

    /// Decodes a tile index into (phase, block): phase 0 is the local sort,
    /// phases 1..=passes are merge passes.
    fn decode(&self, tile: usize) -> (usize, usize) {
        (tile / self.chunks(), tile % self.chunks())
    }

    /// The array the output of pass `p` lands in (`p = 0` is the local
    /// sort). The ping-pong is oriented so the **final** pass always lands
    /// in `data`, where verification expects the result: with an even
    /// number of merge passes the local sort is in place in `data` (the
    /// historical layout), with an odd number it writes its sorted chunks
    /// to `aux` so the chain `aux → data → aux → …` ends on `data`.
    fn pass_dst(&self, pass: usize) -> Iova {
        if (self.passes() - pass) % 2 == 0 {
            self.data
        } else {
            self.aux
        }
    }

    /// Source/destination external arrays for a merge pass.
    fn pass_arrays(&self, pass: usize) -> (Iova, Iova) {
        (self.pass_dst(pass - 1), self.pass_dst(pass))
    }

    /// Merge-path partition over arbitrary element accessors: how many
    /// elements of run A are among the first `k` elements of the merge of
    /// runs A and B.
    fn merge_partition_with<A, B>(
        a: &A,
        a_len: usize,
        b: &B,
        b_len: usize,
        k: usize,
    ) -> Result<usize>
    where
        A: Fn(usize) -> Result<f32>,
        B: Fn(usize) -> Result<f32>,
    {
        let mut lo = k.saturating_sub(b_len);
        let mut hi = k.min(a_len);
        while lo < hi {
            let mid = (lo + hi) / 2;
            let bj = k - mid - 1;
            if bj < b_len && a(mid)? < b(bj)? {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }

    /// Merge-path partition over in-memory runs (kept for unit tests and as
    /// the reference the functional-memory variant mirrors).
    #[cfg(test)]
    fn merge_partition(a: &[f32], b: &[f32], k: usize) -> usize {
        Self::merge_partition_with(&|i| Ok(a[i]), a.len(), &|j| Ok(b[j]), b.len(), k)
            .expect("slice accessors cannot fail")
    }

    /// Computes, for merge tile `(pass, block)`, the source ranges
    /// `(a_start, a_len, b_start, b_len)` with the merge-path binary search
    /// reading the run data from the shared external memory — the model of
    /// the pre-pass the DMA core runs on DRAM-resident data. O(log run_len)
    /// single-element reads per boundary.
    fn merge_ranges_from_memory(
        &self,
        ctx: &TileCtx<'_>,
        pass: usize,
        block: usize,
    ) -> Result<(usize, usize, usize, usize)> {
        let run_len = CHUNK << (pass - 1);
        let (src, _) = self.pass_arrays(pass);
        let out_start = block * CHUNK;
        let pair_base = out_start / (2 * run_len) * (2 * run_len);
        let elem = |idx: usize| ctx.read_f32(src + (idx * 4) as u64);
        let a = |i: usize| elem(pair_base + i);
        let b = |j: usize| elem(pair_base + run_len + j);
        let off = out_start - pair_base;
        let ai0 = Self::merge_partition_with(&a, run_len, &b, run_len, off)?;
        let ai1 = Self::merge_partition_with(&a, run_len, &b, run_len, off + CHUNK)?;
        let bi0 = off - ai0;
        let bi1 = off + CHUNK - ai1;
        Ok((
            pair_base + ai0,
            ai1 - ai0,
            pair_base + run_len + bi0,
            bi1 - bi0,
        ))
    }

    /// The cached partition of a merge tile; planning the tile is the
    /// executor's responsibility ([`DeviceKernel::plan_tile`] runs before
    /// the first `tile_io` of every tile).
    fn planned_ranges(&self, tile: usize) -> (usize, usize, usize, usize) {
        *self
            .ranges
            .get(&tile)
            .expect("merge tile was planned via plan_tile before use")
    }

    /// TCDM layout of one buffer set: run-A segment, run-B segment, output.
    fn tcdm_offsets(&self, tile: usize) -> (u64, u64, u64) {
        let chunk_bytes = (CHUNK * 4) as u64;
        let base = (tile % 2) as u64 * 3 * chunk_bytes;
        (base, base + chunk_bytes, base + 2 * chunk_bytes)
    }
}

impl DeviceKernel for SortDevice {
    fn name(&self) -> &str {
        "sort"
    }

    fn num_tiles(&self) -> usize {
        (1 + self.passes()) * self.chunks()
    }

    fn plan_tile(&mut self, tile: usize, ctx: &TileCtx<'_>) -> Result<()> {
        let (phase, block) = self.decode(tile);
        if phase == 0 || self.ranges.contains_key(&tile) {
            return Ok(());
        }
        let ranges = self.merge_ranges_from_memory(ctx, phase, block)?;
        self.ranges.insert(tile, ranges);
        Ok(())
    }

    fn tile_io(&self, tile: usize) -> TileIo {
        let (phase, block) = self.decode(tile);
        let chunk_bytes = (CHUNK * 4) as u64;
        let (a_off, b_off, out_off) = self.tcdm_offsets(tile);
        if phase == 0 {
            // Local sort: one chunk in from `data`, the sorted chunk out to
            // the pass-0 destination (in place for an even number of merge
            // passes, `aux` for an odd number — see `pass_dst`).
            let off = (block * CHUNK * 4) as u64;
            return TileIo {
                inputs: vec![DmaRequest::input(self.data + off, a_off, chunk_bytes)],
                outputs: vec![DmaRequest::output(
                    self.pass_dst(0) + off,
                    out_off,
                    chunk_bytes,
                )],
            };
        }
        let (src, dst) = self.pass_arrays(phase);
        let (a_start, a_len, b_start, b_len) = self.planned_ranges(tile);
        let mut inputs = Vec::with_capacity(2);
        if a_len > 0 {
            inputs.push(DmaRequest::input(
                src + (a_start * 4) as u64,
                a_off,
                (a_len * 4) as u64,
            ));
        }
        if b_len > 0 {
            inputs.push(DmaRequest::input(
                src + (b_start * 4) as u64,
                b_off,
                (b_len * 4) as u64,
            ));
        }
        TileIo {
            inputs,
            outputs: vec![DmaRequest::output(
                dst + (block * CHUNK * 4) as u64,
                out_off,
                chunk_bytes,
            )],
        }
    }

    fn compute_tile(&mut self, tile: usize, tcdm: &mut Tcdm) -> Result<Cycles> {
        let (phase, _block) = self.decode(tile);
        let (a_off, b_off, out_off) = self.tcdm_offsets(tile);

        if phase == 0 {
            // Local sort of one chunk.
            let mut chunk = vec![0.0f32; CHUNK];
            tcdm.read_f32_slice(a_off, &mut chunk)?;
            chunk.sort_by(f32::total_cmp);
            tcdm.write_f32_slice(out_off, &chunk)?;
            let comparisons = (CHUNK as u64) * (CHUNK as f64).log2().ceil() as u64;
            return Ok(cost::sort_local_cost().parallel_region(comparisons));
        }

        // Merge one output block from the two partitioned input segments.
        let (_a_start, a_len, _b_start, b_len) = self.planned_ranges(tile);
        if a_len + b_len != CHUNK {
            return Err(Error::InvalidConfig {
                reason: format!(
                    "merge partition of tile {tile} covers {} elements instead of {CHUNK}",
                    a_len + b_len
                ),
            });
        }
        let mut a = vec![0.0f32; a_len];
        let mut b = vec![0.0f32; b_len];
        tcdm.read_f32_slice(a_off, &mut a)?;
        tcdm.read_f32_slice(b_off, &mut b)?;
        let mut out = Vec::with_capacity(CHUNK);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if a[i] <= b[j] {
                out.push(a[i]);
                i += 1;
            } else {
                out.push(b[j]);
                j += 1;
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        tcdm.write_f32_slice(out_off, &out)?;

        Ok(cost::sort_merge_cost().parallel_region(CHUNK as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sorts_ascending() {
        let wl = SortWorkload::with_elems(4096);
        let mut rng = DeterministicRng::new(1);
        let init = wl.init(&mut rng);
        let exp = wl.expected(&init);
        assert!(exp[0].windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(exp[0].len(), 4096);
    }

    #[test]
    fn paper_configuration_has_five_phases() {
        let wl = SortWorkload::paper();
        assert_eq!(wl.chunks(), 16);
        assert_eq!(wl.passes(), 4);
        let dev = wl.device_kernel(&[Iova::new(0x1000_0000), Iova::new(0x2000_0000)]);
        assert_eq!(dev.num_tiles(), 80);
    }

    #[test]
    fn merge_partition_splits_correctly() {
        let a = [1.0f32, 3.0, 5.0, 7.0];
        let b = [2.0f32, 4.0, 6.0, 8.0];
        // First 4 elements of the merge are 1,2,3,4: two from each run.
        assert_eq!(SortDevice::merge_partition(&a, &b, 4), 2);
        assert_eq!(SortDevice::merge_partition(&a, &b, 0), 0);
        assert_eq!(SortDevice::merge_partition(&a, &b, 8), 4);
        // Skewed case: all of a precedes b.
        let a2 = [1.0f32, 2.0];
        let b2 = [10.0f32, 20.0];
        assert_eq!(SortDevice::merge_partition(&a2, &b2, 2), 2);
        assert_eq!(SortDevice::merge_partition(&b2, &a2, 2), 0);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_chunk_count_rejected() {
        let _ = SortWorkload::with_elems(3 * 4096);
    }

    #[test]
    #[should_panic(expected = "two-chunk")]
    fn two_chunk_sort_rejected() {
        // chunks == 2 cannot be double-buffered: the single merge tile's
        // prefetch would read the preceding tile's unwritten output.
        let _ = SortWorkload::with_elems(2 * 4096);
    }

    #[test]
    fn ping_pong_always_ends_in_the_data_array() {
        // Whatever the pass-count parity, the final pass must land in
        // `data` (where verification reads the result) and each pass must
        // read what the previous one wrote.
        let data = Iova::new(0x1000_0000);
        let aux = Iova::new(0x2000_0000);
        for n in [4096usize, 16_384, 32_768, 65_536, 131_072] {
            let wl = SortWorkload::with_elems(n);
            let dev = SortDevice {
                n,
                data,
                aux,
                ranges: HashMap::new(),
            };
            assert_eq!(dev.pass_dst(dev.passes()), data, "n={n}: result in data");
            for pass in 1..=dev.passes() {
                let (src, dst) = dev.pass_arrays(pass);
                assert_eq!(src, dev.pass_dst(pass - 1), "n={n} pass {pass}");
                assert_ne!(src, dst, "n={n} pass {pass}: ping-pong alternates");
            }
            // Phase-0 tiles read from data and write to the pass-0
            // destination: in place iff the number of passes is even.
            let io = dev.tile_io(0);
            assert_eq!(io.inputs[0].ext_addr, data);
            let in_place = wl.passes() % 2 == 0;
            assert_eq!(
                io.outputs[0].ext_addr == data,
                in_place,
                "n={n}: phase-0 destination follows pass parity"
            );
        }
    }

    #[test]
    fn local_sort_tiles_are_in_place() {
        let wl = SortWorkload::paper();
        let dev = wl.device_kernel(&[Iova::new(0x1000_0000), Iova::new(0x2000_0000)]);
        let io = dev.tile_io(3);
        assert_eq!(io.inputs.len(), 1);
        assert_eq!(io.outputs.len(), 1);
        assert_eq!(io.inputs[0].ext_addr, io.outputs[0].ext_addr);
        assert_eq!(io.input_bytes(), 16 * 1024);
    }
}
