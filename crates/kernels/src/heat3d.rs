//! `heat3d`: 3-D heat-diffusion stencil (RajaPERF / PolyBench).
//!
//! A seven-point Jacobi stencil over a 64³ grid, iterated for two time steps
//! (ping-pong between the state array and a scratch array). Every grid point
//! is read and written once per step with almost no reuse, which makes this
//! the most memory-bound kernel of the suite — the one for which the paper
//! measures both the largest DMA share (up to 80.8 %) and the largest IOMMU
//! overhead without an LLC (up to 81.3 %).
//!
//! The device processes one output z-plane per tile: the three contributing
//! input planes are fetched as contiguous plane transfers, while the output
//! plane is written back row by row (the natural store pattern of the
//! stencil), giving the short-burst traffic that exposes memory latency.

use sva_cluster::{DeviceKernel, DmaRequest, Tcdm, TileIo};
use sva_common::rng::DeterministicRng;
use sva_common::{Cycles, Iova, Result};
use sva_host::HostKernelCost;

use crate::cost;
use crate::workload::{BufferKind, BufferSpec, Workload};

/// The heat3d workload descriptor.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Heat3dWorkload {
    /// Grid side length (the paper uses 64).
    pub n: usize,
    /// Number of Jacobi time steps (even, so the result lands back in the
    /// state array).
    pub steps: usize,
}

/// Stencil coefficients (central point and the six neighbours).
const C_CENTER: f32 = 0.4;
const C_NEIGH: f32 = 0.1;

impl Heat3dWorkload {
    /// The paper's configuration: a 64 × 64 × 64 grid.
    pub fn paper() -> Self {
        Self { n: 64, steps: 2 }
    }

    /// A grid of side `n` with `steps` time steps.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` or `steps` is odd (odd step counts would leave the
    /// result in the scratch array).
    pub fn with_dim(n: usize, steps: usize) -> Self {
        assert!(n >= 4, "heat3d grid must be at least 4 points per side");
        assert!(steps % 2 == 0, "heat3d step count must be even");
        Self { n, steps }
    }

    fn elems(&self) -> usize {
        self.n * self.n * self.n
    }

    /// Applies one Jacobi step from `src` into `dst` (reference).
    fn step(&self, src: &[f32], dst: &mut [f32]) {
        let n = self.n;
        let idx = |z: usize, y: usize, x: usize| (z * n + y) * n + x;
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let i = idx(z, y, x);
                    if z == 0 || z == n - 1 || y == 0 || y == n - 1 || x == 0 || x == n - 1 {
                        dst[i] = src[i];
                    } else {
                        dst[i] = C_CENTER * src[i]
                            + C_NEIGH
                                * (src[idx(z - 1, y, x)]
                                    + src[idx(z + 1, y, x)]
                                    + src[idx(z, y - 1, x)]
                                    + src[idx(z, y + 1, x)]
                                    + src[idx(z, y, x - 1)]
                                    + src[idx(z, y, x + 1)]);
                    }
                }
            }
        }
    }
}

impl Workload for Heat3dWorkload {
    fn name(&self) -> &'static str {
        "heat3d"
    }

    fn params(&self) -> String {
        format!("{0} x {0} x {0}", self.n)
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        vec![
            BufferSpec {
                name: "u",
                elems: self.elems(),
                kind: BufferKind::InOut,
            },
            BufferSpec {
                name: "u_tmp",
                elems: self.elems(),
                kind: BufferKind::Scratch,
            },
        ]
    }

    fn init(&self, rng: &mut DeterministicRng) -> Vec<Vec<f32>> {
        let mut u = vec![0.0f32; self.elems()];
        rng.fill_f32(&mut u, 0.0, 100.0);
        vec![u, vec![0.0f32; self.elems()]]
    }

    fn expected(&self, initial: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let mut a = initial[0].clone();
        let mut b = vec![0.0f32; self.elems()];
        for _ in 0..self.steps / 2 {
            self.step(&a, &mut b);
            self.step(&b, &mut a);
        }
        vec![a, b]
    }

    fn device_kernel(&self, device_ptrs: &[Iova]) -> Box<dyn DeviceKernel> {
        Box::new(Heat3dDevice {
            n: self.n,
            steps: self.steps,
            u: device_ptrs[0],
            u_tmp: device_ptrs[1],
        })
    }

    fn host_cost(&self) -> HostKernelCost {
        HostKernelCost {
            ops: (self.elems() * self.steps) as u64,
            cycles_per_op: 10.0,
            read_passes: self.steps as u32,
            write_passes: self.steps as u32,
        }
    }

    fn flops(&self) -> u64 {
        8 * (self.elems() * self.steps) as u64
    }
}

/// Device-side plane-streamed heat3d.
struct Heat3dDevice {
    n: usize,
    steps: usize,
    u: Iova,
    u_tmp: Iova,
}

impl Heat3dDevice {
    fn plane_bytes(&self) -> u64 {
        (self.n * self.n * 4) as u64
    }

    /// Source and destination arrays for a time step (ping-pong).
    fn arrays_for_step(&self, step: usize) -> (Iova, Iova) {
        if step % 2 == 0 {
            (self.u, self.u_tmp)
        } else {
            (self.u_tmp, self.u)
        }
    }

    /// `(step, z)` coordinates of a tile.
    fn tile_coords(&self, tile: usize) -> (usize, usize) {
        (tile / self.n, tile % self.n)
    }

    /// TCDM layout of one buffer set: three input planes then the output
    /// plane.
    fn tcdm_offsets(&self, tile: usize) -> (u64, u64) {
        let set = (tile % 2) as u64;
        let base = set * 4 * self.plane_bytes();
        (base, base + 3 * self.plane_bytes())
    }
}

impl DeviceKernel for Heat3dDevice {
    fn name(&self) -> &str {
        "heat3d"
    }

    fn num_tiles(&self) -> usize {
        self.steps * self.n
    }

    fn tile_io(&self, tile: usize) -> TileIo {
        let n = self.n;
        let (step, z) = self.tile_coords(tile);
        let (src, dst) = self.arrays_for_step(step);
        let (in_off, out_off) = self.tcdm_offsets(tile);
        let plane = self.plane_bytes();

        // Input: the contributing planes (z-1, z, z+1 clamped to the grid).
        let lo = z.saturating_sub(1);
        let hi = (z + 1).min(n - 1);
        let mut inputs = Vec::with_capacity(3);
        for (slot, zz) in (lo..=hi).enumerate() {
            inputs.push(DmaRequest::input(
                src + (zz as u64) * plane,
                in_off + slot as u64 * plane,
                plane,
            ));
        }

        // Output: the z plane of the destination array, one row at a time.
        let row_bytes = (n * 4) as u64;
        let outputs = (0..n)
            .map(|y| {
                DmaRequest::output(
                    dst + (z as u64) * plane + y as u64 * row_bytes,
                    out_off + y as u64 * row_bytes,
                    row_bytes,
                )
            })
            .collect();

        TileIo { inputs, outputs }
    }

    fn compute_tile(&mut self, tile: usize, tcdm: &mut Tcdm) -> Result<Cycles> {
        let n = self.n;
        let (_, z) = self.tile_coords(tile);
        let (in_off, out_off) = self.tcdm_offsets(tile);
        let plane = self.plane_bytes();
        let boundary_z = z == 0 || z == n - 1;
        // Plane slots in the TCDM: when z > 0 the plane `z` itself sits in
        // slot 1, otherwise in slot 0.
        let center_slot = if z == 0 { 0u64 } else { 1u64 };
        let at = |slot: u64, y: usize, x: usize| in_off + slot * plane + ((y * n + x) * 4) as u64;

        for y in 0..n {
            for x in 0..n {
                let center = tcdm.read_f32(at(center_slot, y, x));
                let value = if boundary_z || y == 0 || y == n - 1 || x == 0 || x == n - 1 {
                    center
                } else {
                    C_CENTER * center
                        + C_NEIGH
                            * (tcdm.read_f32(at(center_slot - 1, y, x))
                                + tcdm.read_f32(at(center_slot + 1, y, x))
                                + tcdm.read_f32(at(center_slot, y - 1, x))
                                + tcdm.read_f32(at(center_slot, y + 1, x))
                                + tcdm.read_f32(at(center_slot, y, x - 1))
                                + tcdm.read_f32(at(center_slot, y, x + 1)))
                };
                tcdm.write_f32(out_off + ((y * n + x) * 4) as u64, value);
            }
        }
        Ok(cost::heat3d_cost().parallel_region((n * n) as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_points_are_preserved_by_the_reference() {
        let wl = Heat3dWorkload::with_dim(8, 2);
        let mut rng = DeterministicRng::new(3);
        let init = wl.init(&mut rng);
        let exp = wl.expected(&init);
        // Corner stays untouched across both steps.
        assert_eq!(exp[0][0], init[0][0]);
        let n = 8;
        let last = (n * n * n) - 1;
        assert_eq!(exp[0][last], init[0][last]);
    }

    #[test]
    fn interior_points_diffuse_towards_neighbours() {
        let wl = Heat3dWorkload::with_dim(4, 2);
        // A uniform field stays uniform under the stencil (0.4 + 6*0.1 = 1).
        let init = vec![vec![10.0f32; 64], vec![0.0f32; 64]];
        let exp = wl.expected(&init);
        for v in &exp[0] {
            assert!((v - 10.0).abs() < 1e-4);
        }
    }

    #[test]
    fn paper_configuration() {
        let wl = Heat3dWorkload::paper();
        assert_eq!(wl.n, 64);
        assert_eq!(wl.steps, 2);
        assert_eq!(wl.buffers()[0].bytes(), 1024 * 1024);
    }

    #[test]
    fn tiles_cover_both_time_steps() {
        let wl = Heat3dWorkload::paper();
        let dev = wl.device_kernel(&[Iova::new(0x1000_0000), Iova::new(0x2000_0000)]);
        assert_eq!(dev.num_tiles(), 128);
        // First-step tiles read from u, second-step tiles read from u_tmp.
        let first = dev.tile_io(1);
        let second = dev.tile_io(65);
        assert!(first.inputs[0].ext_addr.raw() < 0x2000_0000);
        assert!(second.inputs[0].ext_addr.raw() >= 0x2000_0000);
    }

    #[test]
    fn interior_tile_reads_three_planes_and_fits_tcdm() {
        let wl = Heat3dWorkload::paper();
        let dev = wl.device_kernel(&[Iova::new(0x1000_0000), Iova::new(0x2000_0000)]);
        let io = dev.tile_io(5);
        assert_eq!(io.inputs.len(), 3);
        assert_eq!(io.outputs.len(), 64);
        let set_bytes = io.input_bytes() + io.output_bytes();
        assert!(2 * set_bytes <= 128 * 1024);
        // Boundary tile only needs two planes.
        assert_eq!(dev.tile_io(0).inputs.len(), 2);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_step_count_is_rejected() {
        let _ = Heat3dWorkload::with_dim(8, 3);
    }
}
