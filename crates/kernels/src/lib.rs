//! The benchmark kernels of the evaluation (a RajaPERF subset).
//!
//! The paper implements five kernels as heterogeneous OpenMP applications
//! (Table I): four linear kernels of increasing arithmetic intensity —
//! `axpy`, `heat3d`, `gesummv`, `gemm` — and one non-linear kernel, a
//! parallel merge `sort`. This crate provides, for each of them:
//!
//! * a [`Workload`] descriptor (problem size, buffer layout, input
//!   generation, host reference results, verification);
//! * a tiled, double-buffered device implementation
//!   ([`sva_cluster::DeviceKernel`]) that really computes on the data the DMA
//!   engine moves into the TCDM;
//! * a host-execution cost description used for the host-only bars of
//!   Figure 2.
//!
//! The calibration constants that map operation counts to cluster cycles live
//! in [`cost`] and are documented there.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod axpy;
pub mod cost;
pub mod gemm;
pub mod gesummv;
pub mod heat3d;
pub mod sort;
pub mod suite;
pub mod workload;

pub use axpy::AxpyWorkload;
pub use gemm::GemmWorkload;
pub use gesummv::GesummvWorkload;
pub use heat3d::Heat3dWorkload;
pub use sort::SortWorkload;
pub use suite::{KernelKind, KernelSuite};
pub use workload::{BufferKind, BufferSpec, Workload};
