//! `axpy`: single-precision `y = a * x + y` (RajaPERF *basic* group).
//!
//! The least arithmetically intense kernel of the suite (one FMA per two
//! loaded elements) and the one the paper uses for the application-level
//! offloading comparison of Figure 2: its runtime is small enough that copy,
//! map and fork/join overheads are clearly visible.

use sva_cluster::{DeviceKernel, DmaRequest, Tcdm, TileIo};
use sva_common::rng::DeterministicRng;
use sva_common::{Cycles, Iova, Result};
use sva_host::HostKernelCost;

use crate::cost;
use crate::workload::{BufferKind, BufferSpec, Workload};

/// Elements of `x`/`y` processed per tile (16 KiB per buffer per tile).
const TILE_ELEMS: usize = 4096;

/// The axpy workload descriptor.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct AxpyWorkload {
    /// Number of vector elements.
    pub n: usize,
    /// The scalar multiplier.
    pub alpha: f32,
}

impl AxpyWorkload {
    /// The paper's configuration: 32 768 elements (16 input pages).
    pub fn paper() -> Self {
        Self::with_elems(32_768)
    }

    /// An axpy of `n` elements (used for the input-size sweeps of Figures 2
    /// and 3).
    pub fn with_elems(n: usize) -> Self {
        Self { n, alpha: 2.5 }
    }
}

impl Workload for AxpyWorkload {
    fn name(&self) -> &'static str {
        "axpy"
    }

    fn params(&self) -> String {
        format!("{}", self.n)
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        vec![
            BufferSpec {
                name: "x",
                elems: self.n,
                kind: BufferKind::Input,
            },
            BufferSpec {
                name: "y",
                elems: self.n,
                kind: BufferKind::InOut,
            },
        ]
    }

    fn init(&self, rng: &mut DeterministicRng) -> Vec<Vec<f32>> {
        let mut x = vec![0.0f32; self.n];
        let mut y = vec![0.0f32; self.n];
        rng.fill_f32(&mut x, -1.0, 1.0);
        rng.fill_f32(&mut y, -1.0, 1.0);
        vec![x, y]
    }

    fn expected(&self, initial: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let x = &initial[0];
        let mut y = initial[1].clone();
        for i in 0..self.n {
            y[i] += self.alpha * x[i];
        }
        vec![x.clone(), y]
    }

    fn device_kernel(&self, device_ptrs: &[Iova]) -> Box<dyn DeviceKernel> {
        Box::new(AxpyDevice {
            n: self.n,
            alpha: self.alpha,
            x: device_ptrs[0],
            y: device_ptrs[1],
        })
    }

    fn host_cost(&self) -> HostKernelCost {
        // One FMA per element; CVA6's single FPU plus loop overhead costs a
        // handful of cycles per element on top of the memory traffic.
        HostKernelCost::streaming(self.n as u64, 4.0)
    }

    fn flops(&self) -> u64 {
        2 * self.n as u64
    }
}

/// Device-side tiled axpy.
struct AxpyDevice {
    n: usize,
    alpha: f32,
    x: Iova,
    y: Iova,
}

impl AxpyDevice {
    fn tile_elems(&self, tile: usize) -> usize {
        let start = tile * TILE_ELEMS;
        TILE_ELEMS.min(self.n - start)
    }

    /// TCDM offsets of the x and y buffers for a tile (double-buffered).
    fn tcdm_offsets(&self, tile: usize) -> (u64, u64) {
        let set = (tile % 2) as u64;
        let set_base = set * 2 * (TILE_ELEMS as u64 * 4);
        (set_base, set_base + TILE_ELEMS as u64 * 4)
    }
}

impl DeviceKernel for AxpyDevice {
    fn name(&self) -> &str {
        "axpy"
    }

    fn num_tiles(&self) -> usize {
        self.n.div_ceil(TILE_ELEMS)
    }

    fn tile_io(&self, tile: usize) -> TileIo {
        let elems = self.tile_elems(tile) as u64;
        let bytes = elems * 4;
        let ext_off = (tile * TILE_ELEMS * 4) as u64;
        let (x_off, y_off) = self.tcdm_offsets(tile);
        TileIo {
            inputs: vec![
                DmaRequest::input(self.x + ext_off, x_off, bytes),
                DmaRequest::input(self.y + ext_off, y_off, bytes),
            ],
            outputs: vec![DmaRequest::output(self.y + ext_off, y_off, bytes)],
        }
    }

    fn compute_tile(&mut self, tile: usize, tcdm: &mut Tcdm) -> Result<Cycles> {
        let elems = self.tile_elems(tile);
        let (x_off, y_off) = self.tcdm_offsets(tile);
        for i in 0..elems as u64 {
            let x = tcdm.read_f32(x_off + i * 4);
            let y = tcdm.read_f32(y_off + i * 4);
            tcdm.write_f32(y_off + i * 4, y + self.alpha * x);
        }
        Ok(cost::axpy_cost().parallel_region(elems as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_manual_computation() {
        let wl = AxpyWorkload { n: 8, alpha: 2.0 };
        let init = vec![vec![1.0; 8], vec![3.0; 8]];
        let exp = wl.expected(&init);
        assert_eq!(exp[1], vec![5.0; 8]);
        assert_eq!(exp[0], vec![1.0; 8]);
    }

    #[test]
    fn paper_configuration_spans_16_pages_per_vector() {
        let wl = AxpyWorkload::paper();
        assert_eq!(wl.n, 32_768);
        let bufs = wl.buffers();
        assert_eq!(bufs.len(), 2);
        assert_eq!(bufs[0].bytes(), 128 * 1024);
        assert_eq!(bufs[0].bytes() / 4096, 32);
    }

    #[test]
    fn device_kernel_tiles_cover_whole_vector() {
        let wl = AxpyWorkload::with_elems(10_000);
        let dev = wl.device_kernel(&[Iova::new(0x1000_0000), Iova::new(0x2000_0000)]);
        let total: u64 = (0..dev.num_tiles())
            .map(|t| dev.tile_io(t).output_bytes())
            .sum();
        assert_eq!(total, 10_000 * 4);
        // Last tile is a partial tile.
        assert_eq!(dev.num_tiles(), 3);
    }

    #[test]
    fn tiles_alternate_tcdm_buffers() {
        let wl = AxpyWorkload::paper();
        let dev = wl.device_kernel(&[Iova::new(0x1000_0000), Iova::new(0x2000_0000)]);
        let t0 = dev.tile_io(0);
        let t1 = dev.tile_io(1);
        assert_ne!(t0.inputs[0].tcdm_offset, t1.inputs[0].tcdm_offset);
        assert_eq!(
            t0.inputs[0].tcdm_offset,
            dev.tile_io(2).inputs[0].tcdm_offset
        );
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let wl = AxpyWorkload::with_elems(256);
        let a = wl.init(&mut DeterministicRng::new(7));
        let b = wl.init(&mut DeterministicRng::new(7));
        let c = wl.init(&mut DeterministicRng::new(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
