//! `gesummv`: `y = α·A·x + β·B·x` (RajaPERF / PolyBench).
//!
//! A matrix-vector kernel: every matrix element is used exactly once, so the
//! kernel streams 2 MiB of matrix data for only ~0.5 MFLOP of work and sits
//! between `gemm` and `heat3d` in memory-boundedness. The device
//! implementation processes blocks of matrix rows per tile; the small `x`
//! vector is re-fetched with each tile (it shares the double-buffered tile
//! layout), and one partial `y` block is written back per tile.

use sva_cluster::{DeviceKernel, DmaRequest, Tcdm, TileIo};
use sva_common::rng::DeterministicRng;
use sva_common::{Cycles, Iova, Result};
use sva_host::HostKernelCost;

use crate::cost;
use crate::workload::{BufferKind, BufferSpec, Workload};

/// Number of matrix rows processed per tile.
const ROWS_PER_TILE: usize = 8;

/// The gesummv workload descriptor.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct GesummvWorkload {
    /// Matrix dimension (the paper uses 512).
    pub n: usize,
    /// The α coefficient.
    pub alpha: f32,
    /// The β coefficient.
    pub beta: f32,
}

impl GesummvWorkload {
    /// The paper's configuration: 512 × 512 matrices.
    pub fn paper() -> Self {
        Self::with_dim(512)
    }

    /// A gesummv of dimension `n` (must be a multiple of the row-block).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of 8.
    pub fn with_dim(n: usize) -> Self {
        assert!(
            n > 0 && n % ROWS_PER_TILE == 0,
            "gesummv dimension must be a multiple of 8"
        );
        Self {
            n,
            alpha: 1.5,
            beta: 1.2,
        }
    }
}

impl Workload for GesummvWorkload {
    fn name(&self) -> &'static str {
        "gesummv"
    }

    fn params(&self) -> String {
        format!("{} x {}", self.n, self.n)
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        let n = self.n;
        vec![
            BufferSpec {
                name: "A",
                elems: n * n,
                kind: BufferKind::Input,
            },
            BufferSpec {
                name: "B",
                elems: n * n,
                kind: BufferKind::Input,
            },
            BufferSpec {
                name: "x",
                elems: n,
                kind: BufferKind::Input,
            },
            BufferSpec {
                name: "y",
                elems: n,
                kind: BufferKind::Output,
            },
        ]
    }

    fn init(&self, rng: &mut DeterministicRng) -> Vec<Vec<f32>> {
        let n = self.n;
        let mut a = vec![0.0f32; n * n];
        let mut b = vec![0.0f32; n * n];
        let mut x = vec![0.0f32; n];
        rng.fill_f32(&mut a, -1.0, 1.0);
        rng.fill_f32(&mut b, -1.0, 1.0);
        rng.fill_f32(&mut x, -1.0, 1.0);
        vec![a, b, x, vec![0.0f32; n]]
    }

    fn expected(&self, initial: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let n = self.n;
        let (a, b, x) = (&initial[0], &initial[1], &initial[2]);
        let mut y = vec![0.0f32; n];
        for i in 0..n {
            let mut ax = 0.0f32;
            let mut bx = 0.0f32;
            for j in 0..n {
                ax += a[i * n + j] * x[j];
                bx += b[i * n + j] * x[j];
            }
            y[i] = self.alpha * ax + self.beta * bx;
        }
        vec![a.clone(), b.clone(), x.clone(), y]
    }

    fn device_kernel(&self, device_ptrs: &[Iova]) -> Box<dyn DeviceKernel> {
        Box::new(GesummvDevice {
            n: self.n,
            alpha: self.alpha,
            beta: self.beta,
            a: device_ptrs[0],
            b: device_ptrs[1],
            x: device_ptrs[2],
            y: device_ptrs[3],
        })
    }

    fn host_cost(&self) -> HostKernelCost {
        HostKernelCost::streaming(2 * (self.n as u64).pow(2), 4.5)
    }

    fn flops(&self) -> u64 {
        4 * (self.n as u64).pow(2) + 3 * self.n as u64
    }
}

/// Device-side row-blocked gesummv.
struct GesummvDevice {
    n: usize,
    alpha: f32,
    beta: f32,
    a: Iova,
    b: Iova,
    x: Iova,
    y: Iova,
}

impl GesummvDevice {
    /// TCDM layout of one buffer set: A rows, B rows, x, y block.
    fn tcdm_offsets(&self, tile: usize) -> (u64, u64, u64, u64) {
        let rows_bytes = (ROWS_PER_TILE * self.n * 4) as u64;
        let x_bytes = (self.n * 4) as u64;
        let y_bytes = (ROWS_PER_TILE * 4) as u64;
        let set_size = 2 * rows_bytes + x_bytes + y_bytes;
        let base = (tile % 2) as u64 * set_size;
        (
            base,
            base + rows_bytes,
            base + 2 * rows_bytes,
            base + 2 * rows_bytes + x_bytes,
        )
    }
}

impl DeviceKernel for GesummvDevice {
    fn name(&self) -> &str {
        "gesummv"
    }

    fn num_tiles(&self) -> usize {
        self.n / ROWS_PER_TILE
    }

    fn tile_io(&self, tile: usize) -> TileIo {
        let n = self.n;
        let row0 = tile * ROWS_PER_TILE;
        let rows_bytes = (ROWS_PER_TILE * n * 4) as u64;
        let (a_off, b_off, x_off, y_off) = self.tcdm_offsets(tile);
        TileIo {
            inputs: vec![
                DmaRequest::input(self.a + (row0 * n * 4) as u64, a_off, rows_bytes),
                DmaRequest::input(self.b + (row0 * n * 4) as u64, b_off, rows_bytes),
                DmaRequest::input(self.x, x_off, (n * 4) as u64),
            ],
            outputs: vec![DmaRequest::output(
                self.y + (row0 * 4) as u64,
                y_off,
                (ROWS_PER_TILE * 4) as u64,
            )],
        }
    }

    fn compute_tile(&mut self, tile: usize, tcdm: &mut Tcdm) -> Result<Cycles> {
        let n = self.n;
        let (a_off, b_off, x_off, y_off) = self.tcdm_offsets(tile);
        for r in 0..ROWS_PER_TILE {
            let mut ax = 0.0f32;
            let mut bx = 0.0f32;
            for j in 0..n {
                let xj = tcdm.read_f32(x_off + (j * 4) as u64);
                ax += tcdm.read_f32(a_off + ((r * n + j) * 4) as u64) * xj;
                bx += tcdm.read_f32(b_off + ((r * n + j) * 4) as u64) * xj;
            }
            tcdm.write_f32(y_off + (r * 4) as u64, self.alpha * ax + self.beta * bx);
        }
        let macs = (2 * ROWS_PER_TILE * n) as u64;
        Ok(cost::gesummv_cost().parallel_region(macs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_manual_computation() {
        let wl = GesummvWorkload {
            n: 16,
            alpha: 1.0,
            beta: 1.0,
        };
        // A = I, B = I  =>  y = 2x.
        let n = 16;
        let mut a = vec![0.0f32; n * n];
        let mut b = vec![0.0f32; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
            b[i * n + i] = 1.0;
        }
        let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let exp = wl.expected(&[a, b, x.clone(), vec![0.0; n]]);
        let want: Vec<f32> = x.iter().map(|v| 2.0 * v).collect();
        assert_eq!(exp[3], want);
    }

    #[test]
    fn paper_configuration_moves_two_mebibytes() {
        let wl = GesummvWorkload::paper();
        assert_eq!(wl.n, 512);
        assert_eq!(wl.device_bytes(), 2 * 512 * 512 * 4 + 2 * 512 * 4);
        assert_eq!(wl.buffers().len(), 4);
    }

    #[test]
    fn device_tiles_cover_all_rows() {
        let wl = GesummvWorkload::paper();
        let ptrs: Vec<Iova> = (0..4).map(|i| Iova::new(0x1000_0000 * (i + 1))).collect();
        let dev = wl.device_kernel(&ptrs);
        assert_eq!(dev.num_tiles(), 64);
        let y_bytes: u64 = (0..dev.num_tiles())
            .map(|t| dev.tile_io(t).output_bytes())
            .sum();
        assert_eq!(y_bytes, 512 * 4);
        // Matrix traffic: both matrices are streamed exactly once, x once per tile.
        let in_bytes: u64 = (0..dev.num_tiles())
            .map(|t| dev.tile_io(t).input_bytes())
            .sum();
        assert_eq!(in_bytes, (2 * 512 * 512 * 4 + 64 * 512 * 4) as u64);
    }

    #[test]
    fn tile_layout_fits_the_tcdm() {
        let wl = GesummvWorkload::paper();
        let ptrs: Vec<Iova> = (0..4).map(|i| Iova::new(0x1000_0000 * (i + 1))).collect();
        let dev = wl.device_kernel(&ptrs);
        let per_set = dev.tile_io(0).input_bytes() + dev.tile_io(0).output_bytes();
        assert!(
            2 * per_set <= 128 * 1024,
            "double-buffered tile must fit the TCDM"
        );
    }
}
