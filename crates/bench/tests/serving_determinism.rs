//! Deterministic-replay guarantee of the serving sweep: the JSON payload
//! must be bit-identical regardless of how many worker threads map the
//! grid. Every point is a pure function of its config and the shared
//! calibration, and `par_map_with` preserves input order, so neither the
//! thread count nor scheduling luck may leak into the result (the
//! `SVA_BENCH_THREADS` knob must be a pure performance dial).

use sva_bench::par::par_map_with;
use sva_soc::experiments::serving;
use sva_soc::experiments::ServingSweepResult;

fn sweep_json(workers: usize) -> String {
    let services = serving::calibrate().expect("service calibration");
    let points = par_map_with(serving::grid(true), workers, |config| {
        serving::run_point(&config, &services)
    });
    ServingSweepResult { points }.to_json()
}

#[test]
fn serving_sweep_replays_identically_across_worker_counts() {
    let serial = sweep_json(1);
    let parallel = sweep_json(4);
    assert_eq!(
        serial, parallel,
        "serving sweep JSON differs between 1 and 4 workers"
    );
    assert!(serial.contains("\"experiment\": \"serving_sweep\""));
}
