//! The fabric-scaling sweep driver: cluster count × platform variant × DRAM
//! latency, fanned out across worker threads, with per-initiator contention
//! statistics.
//!
//! Prints the scaling table and writes the machine-readable results to
//! `BENCH_fabric.json` (override with `--out <path>`), so successive PRs
//! accumulate a perf trajectory.
//!
//! Usage: `fabric_sweep [--paper|--small] [--out <path>]`

use sva_bench::par::par_map;
use sva_bench::{parse_args, with_banner, RunSize};
use sva_kernels::KernelKind;
use sva_soc::config::SocVariant;
use sva_soc::experiments::fabric::{self, FabricSweepResult};

fn out_path() -> String {
    let args: Vec<String> = std::env::args().skip(1).collect();
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_fabric.json".to_string())
}

fn main() {
    let size = parse_args();
    let clusters: &[usize] = if size.is_paper() {
        &[1, 2, 4, 8]
    } else {
        &[1, 2, 4]
    };
    let latencies = size.latencies();
    let variants = [
        SocVariant::Baseline,
        SocVariant::Iommu,
        SocVariant::IommuLlc,
    ];
    let kernel = KernelKind::Gemm;
    let paper_size = size == RunSize::Paper;

    let mut grid = Vec::new();
    for &n in clusters {
        for &variant in &variants {
            for &latency in &latencies {
                grid.push((n, variant, latency));
            }
        }
    }

    let points = par_map(grid, |(n, variant, latency)| {
        fabric::run_point(kernel, paper_size, n, variant, latency)
            .unwrap_or_else(|e| panic!("fabric point {n}x {variant:?} @{latency} failed: {e:?}"))
    });
    let result = FabricSweepResult { points };

    with_banner("Fabric scaling: clusters x variant x DRAM latency", || {
        result.render()
    });

    let path = out_path();
    std::fs::write(&path, result.to_json()).expect("write BENCH_fabric.json");
    println!("wrote {} points to {path}", result.points.len());
}
