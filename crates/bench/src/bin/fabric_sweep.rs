//! The fabric-scaling sweep driver: cluster count × platform variant × DRAM
//! latency × channel count × arbitration policy, fanned out across worker
//! threads, with per-initiator and per-channel contention statistics.
//!
//! Three sub-grids are measured:
//!
//! * the **scaling grid** — clusters × variants × latencies at the baseline
//!   fabric (one channel, round-robin), the PR 1 perf trajectory;
//! * the **QoS grid** — channels {1, 2, 4} × every arbitration policy at the
//!   highest cluster count on the IOMMU+LLC variant, which is where the
//!   bandwidth and fairness knobs actually bite;
//! * the **global-clock grid** — timed host interference × MSHR-style PTW
//!   batching at the highest cluster count (single channel, round-robin):
//!   the engine where host loads/stores and page-table walks queue on the
//!   fabric timelines like every other initiator.
//!
//! Prints the scaling table and writes the machine-readable results to
//! `BENCH_fabric.json` (override with `--out <path>`), so successive PRs
//! accumulate a perf trajectory.
//!
//! Usage: `fabric_sweep [--paper|--small] [--out <path>]`

use std::time::Instant;

use sva_bench::par::{par_map, worker_count};
use sva_bench::{parse_args, with_banner, RunSize};
use sva_common::Cycles;
use sva_common::{ArbitrationPolicy, QueueDepths, ReplacementPolicy, TlbOrg};
use sva_kernels::KernelKind;
use sva_soc::config::SocVariant;
use sva_soc::experiments::fabric::{
    self, FabricKnobs, FabricSweepResult, SweepMeta, TlbHierarchyConfig, TlbKnobs, TlbLevelConfig,
};

fn out_path() -> String {
    let args: Vec<String> = std::env::args().skip(1).collect();
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_fabric.json".to_string())
}

fn main() {
    let size = parse_args();
    let clusters: &[usize] = if size.is_paper() {
        &[1, 2, 4, 8]
    } else {
        &[1, 2, 4]
    };
    let latencies = size.latencies();
    let variants = [
        SocVariant::Baseline,
        SocVariant::Iommu,
        SocVariant::IommuLlc,
    ];
    let kernel = KernelKind::Gemm;
    let paper_size = size == RunSize::Paper;
    let max_clusters = *clusters.last().expect("non-empty cluster list");

    // Scaling grid: the PR 1 trajectory at the baseline fabric.
    let baseline = FabricKnobs::default();
    let unbounded = QueueDepths::UNBOUNDED;
    let mut grid = Vec::new();
    for &n in clusters {
        for &variant in &variants {
            for &latency in &latencies {
                grid.push((
                    n,
                    variant,
                    latency,
                    1usize,
                    ArbitrationPolicy::RoundRobin,
                    unbounded,
                    baseline,
                    TlbKnobs::default(),
                ));
            }
        }
    }
    // QoS grid: channel and policy knobs under maximal contention. The
    // single-channel round-robin corner is already in the scaling grid.
    let base_latency = latencies[0];
    let policies = [
        ArbitrationPolicy::RoundRobin,
        ArbitrationPolicy::Weighted(
            (0..max_clusters)
                .map(|i| 1 << (max_clusters - 1 - i))
                .map(|w: usize| w as u32)
                .collect(),
        ),
        ArbitrationPolicy::FixedPriority,
    ];
    for &channels in &[1usize, 2, 4] {
        for policy in &policies {
            if channels == 1 && *policy == ArbitrationPolicy::RoundRobin {
                continue;
            }
            grid.push((
                max_clusters,
                SocVariant::IommuLlc,
                base_latency,
                channels,
                policy.clone(),
                unbounded,
                baseline,
                TlbKnobs::default(),
            ));
        }
    }
    // Global-clock grid: host interference × PTW batching at maximal
    // contention (the baseline knob corner is already in the scaling grid).
    for &knobs in &FabricKnobs::ALL[1..] {
        grid.push((
            max_clusters,
            SocVariant::IommuLlc,
            base_latency,
            1usize,
            ArbitrationPolicy::RoundRobin,
            unbounded,
            knobs,
            TlbKnobs::default(),
        ));
    }
    // Queue-depth grid: the split-transaction fabric under maximal
    // contention. Finite request/response queues at the host-idle baseline
    // (DMA-only backpressure) and under the full timed engine (host stream
    // + batched walker also competing for credits). The unbounded corner is
    // already covered by the grids above.
    for &depths in &[QueueDepths::bounded(16, 16), QueueDepths::bounded(4, 4)] {
        for &knobs in &[FabricKnobs::ALL[0], FabricKnobs::ALL[3]] {
            grid.push((
                max_clusters,
                SocVariant::IommuLlc,
                base_latency,
                1usize,
                ArbitrationPolicy::RoundRobin,
                depths,
                knobs,
                TlbKnobs::default(),
            ));
        }
    }

    // TLB grid: the two-level translation hierarchy under maximal
    // contention — L1/L2 geometry x replacement policy x demand paging
    // on/off (single channel, round-robin, IOMMU+LLC; the single-level
    // premapped corner is already in the scaling grid).
    for &(l1_entries, l2_sets, l2_ways) in &[(4usize, 8usize, 4usize), (8, 16, 4)] {
        for policy in [
            ReplacementPolicy::TrueLru,
            ReplacementPolicy::PseudoLru,
            ReplacementPolicy::Fifo,
        ] {
            for demand_paging in [false, true] {
                let hierarchy = TlbHierarchyConfig {
                    l1: TlbLevelConfig::new(
                        TlbOrg::fully_associative(l1_entries),
                        policy,
                        Cycles::new(1),
                    ),
                    l2: TlbLevelConfig::new(TlbOrg::new(l2_sets, l2_ways), policy, Cycles::new(4)),
                };
                grid.push((
                    max_clusters,
                    SocVariant::IommuLlc,
                    base_latency,
                    1usize,
                    ArbitrationPolicy::RoundRobin,
                    unbounded,
                    baseline,
                    TlbKnobs {
                        hierarchy: Some(hierarchy),
                        demand_paging,
                    },
                ));
            }
        }
    }

    let workers = worker_count(grid.len());
    let sweep_start = Instant::now();
    let timed_points = par_map(
        grid,
        |(n, variant, latency, channels, policy, depths, knobs, tlb)| {
            let point_start = Instant::now();
            let point = fabric::run_point(
                kernel, paper_size, n, variant, latency, channels, &policy, depths, knobs, tlb,
            )
            .unwrap_or_else(|e| {
                panic!(
                    "fabric point {n}x {variant:?} @{latency} ch{channels} {policy:?} {depths} {knobs:?} {tlb:?} failed: {e:?}"
                )
            });
            (point, point_start.elapsed().as_millis() as u64)
        },
    );
    let total_wallclock_ms = sweep_start.elapsed().as_millis() as u64;
    let (points, points_wallclock_ms): (Vec<_>, Vec<_>) = timed_points.into_iter().unzip();
    let result = FabricSweepResult { points };
    let meta = SweepMeta {
        workers,
        total_wallclock_ms,
        points_wallclock_ms,
    };

    with_banner(
        "Fabric scaling: clusters x variant x latency x channels x policy x TLB",
        || result.render(),
    );

    let path = out_path();
    std::fs::write(&path, result.to_json_with_meta(&meta)).expect("write BENCH_fabric.json");
    println!(
        "wrote {} points to {path} ({} workers, {total_wallclock_ms} ms)",
        result.points.len(),
        meta.workers
    );
}
