//! Regenerates Table I: the benchmark-kernel inventory.

use sva_bench::with_banner;
use sva_soc::experiments::table1;

fn main() {
    with_banner("Table I: evaluated kernels", table1::render);
}
