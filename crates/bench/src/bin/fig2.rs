//! Regenerates Figure 2: the axpy offload breakdown (left) and the copy-vs-
//! map scaling with input size (right), plus the Section IV-A headline
//! (zero-copy offloading vs copy-based offloading).

use sva_bench::{parse_args, with_banner, RunSize};
use sva_soc::experiments::{copy_vs_map, offload_breakdown};

fn main() {
    let size = parse_args();
    let elems = if size.is_paper() { 32_768 } else { 8_192 };
    let breakdown = offload_breakdown::run(elems, 200).expect("figure 2 (left) failed");
    with_banner("Figure 2 (left): axpy offload breakdown", || {
        breakdown.render()
    });

    let pages: &[u64] = if size == RunSize::Paper {
        &[4, 8, 16, 32, 64, 128]
    } else {
        &[4, 16]
    };
    let scaling = copy_vs_map::run(pages, &[200]).expect("figure 2 (right) failed");
    with_banner("Figure 2 (right): copy vs map time over input size", || {
        scaling.render()
    });
}
