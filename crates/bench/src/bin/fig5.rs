//! Regenerates Figure 5: average IOMMU page-table-walk time with and without
//! the shared LLC and with and without concurrent host traffic.

use sva_bench::{parse_args, with_banner, RunSize};
use sva_soc::experiments::ptw_time;

fn main() {
    let size = parse_args();
    let latencies: Vec<u64> = if size == RunSize::Paper {
        vec![200, 400, 600, 800, 1000]
    } else {
        vec![200, 1000]
    };
    let elems = if size.is_paper() { 32_768 } else { 8_192 };
    let result = ptw_time::run(elems, &latencies).expect("figure 5 sweep failed");
    with_banner("Figure 5: average IOMMU page-table-walk time", || {
        result.render()
    });
}
