//! Runs the design-choice ablations called out in DESIGN.md (beyond the
//! paper's own figures): IOTLB capacity, DMA bypass vs DMA through the LLC,
//! outstanding DMA bursts and double buffering.

use sva_bench::with_banner;
use sva_kernels::KernelKind;
use sva_soc::experiments::ablation;

fn main() {
    let iotlb = ablation::iotlb_size(KernelKind::Gesummv, 1000, &[1, 2, 4, 8, 16, 64])
        .expect("IOTLB ablation failed");
    with_banner("Ablation: IOTLB capacity (no LLC)", || iotlb.render());

    let bypass =
        ablation::dma_through_llc(KernelKind::Heat3d, 600).expect("bypass ablation failed");
    with_banner(
        "Ablation: device DMA bypassing vs traversing the LLC",
        || bypass.render(),
    );

    let outstanding = ablation::dma_outstanding(KernelKind::Heat3d, 1000, &[1, 2, 4, 8])
        .expect("outstanding ablation failed");
    with_banner("Ablation: outstanding DMA bursts", || outstanding.render());

    let buffering =
        ablation::double_buffering(KernelKind::Gesummv, 600).expect("buffering ablation failed");
    with_banner("Ablation: double vs single buffering", || {
        buffering.render()
    });

    let flush = ablation::flush_before_map(1000).expect("flush ablation failed");
    with_banner(
        "Ablation: LLC flush before vs after create_iommu_mapping",
        || flush.render(),
    );
}
