//! Regenerates Figure 4: device runtime relative to the baseline for the
//! three platform variants, with the IOMMU overhead annotations.

use sva_bench::{parse_args, with_banner};
use sva_kernels::KernelKind;
use sva_soc::experiments::kernel_runtime;

fn main() {
    let size = parse_args();
    let latencies = size.latencies();
    let result = kernel_runtime::run(&KernelKind::TABLE2, &latencies, size.is_paper())
        .expect("figure 4 sweep failed");
    with_banner("Figure 4: kernel execution relative to baseline", || {
        result.render_fig4(&latencies)
    });
}
