//! The open-loop serving sweep: multi-tenant arrival mixes × dispatch
//! policies × offered utilizations, written to `BENCH_serving.json` so the
//! SLO picture (p50/p99/p999, rejects, per-tenant goodput) is tracked
//! PR-over-PR.
//!
//! Service times are calibrated once per kernel with a real device-only
//! platform run; the grid points themselves are pure discrete-event replays
//! and are mapped across worker threads with `par_map` (the run is
//! deterministic at any worker count — every point is a pure function of
//! its config and the shared calibration).
//!
//! Usage: `serving_sweep [--smoke] [--out <path>] [--validate <path>]`
//!
//! `--smoke` shrinks the grid for CI (fewer policies, one utilization,
//! quarter-length traces); `--validate <path>` checks an existing
//! `BENCH_serving.json` against the documented schema and exits. The
//! writer self-validates its own output before touching the file.

use std::time::Instant;

use sva_bench::par::{par_map, worker_count};
use sva_soc::experiments::serving::{self, SweepMeta};
use sva_soc::experiments::ServingSweepResult;

/// Schema check of a `BENCH_serving.json` (hand-rolled; the build is
/// offline and carries no serde_json). Verifies the experiment tag, the
/// meta block, per-point SLO keys, per-tenant goodput keys, and coverage of
/// every arrival mix and at least two dispatch policies. Returns every
/// violation found.
fn validate(text: &str) -> Vec<String> {
    let mut errors = Vec::new();
    let mut require = |needle: &str, what: &str| {
        if !text.contains(needle) {
            errors.push(format!("missing {what}: expected `{needle}`"));
        }
    };
    require("\"experiment\": \"serving_sweep\"", "experiment tag");
    require("\"meta\": {", "meta section");
    require("\"workers\": ", "meta.workers");
    require("\"total_wallclock_ms\": ", "meta.total_wallclock_ms");
    require("\"points_wallclock_ms\": [", "meta.points_wallclock_ms");
    require("\"points\": [", "points section");
    for mix in ["poisson", "bursty", "diurnal"] {
        require(&format!("\"mix\": \"{mix}\""), "arrival mix coverage");
    }
    for policy in ["fcfs", "priority"] {
        require(
            &format!("\"policy\": \"{policy}\""),
            "dispatch policy coverage",
        );
    }
    for key in [
        "utilization",
        "admission_depth",
        "offered",
        "admitted",
        "rejected",
        "completed",
        "makespan",
        "latency_p50",
        "latency_p99",
        "latency_p999",
        "queue_peak",
        "queue_depth_samples",
    ] {
        require(&format!("\"{key}\": "), "per-point key");
    }
    for key in ["offered_per_mcycle", "goodput_per_mcycle", "service_cycles"] {
        require(&format!("\"{key}\": "), "per-tenant key");
    }
    require("\"tenants\": [", "per-point tenant section");
    let opens = text.matches('{').count();
    let closes = text.matches('}').count();
    if opens != closes {
        errors.push(format!("unbalanced braces: {opens} open vs {closes} close"));
    }
    errors
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--validate") {
        let path = args.get(i + 1).expect("--validate <path>");
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let errors = validate(&text);
        if errors.is_empty() {
            println!("{path}: schema ok");
            return;
        }
        for e in &errors {
            eprintln!("{path}: {e}");
        }
        std::process::exit(1);
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serving.json".to_string());

    let start = Instant::now();
    let services = serving::calibrate().expect("service calibration");
    let calibrate_ms = start.elapsed().as_secs_f64() * 1e3;
    for (kernel, cycles) in services.entries() {
        println!("{:>16}: {} service cycles", kernel.name(), cycles.raw());
    }
    println!("calibration took {calibrate_ms:.1} ms");

    let configs = serving::grid(smoke);
    let workers = worker_count(configs.len());
    let sweep_start = Instant::now();
    let timed: Vec<(sva_soc::serving::ServingReport, u64)> = par_map(configs, {
        let services = &services;
        move |config| {
            let point_start = Instant::now();
            let report = serving::run_point(&config, services);
            (report, point_start.elapsed().as_millis() as u64)
        }
    });
    let total_wallclock_ms = start.elapsed().as_millis() as u64;
    let sweep_ms = sweep_start.elapsed().as_secs_f64() * 1e3;

    let (points, points_wallclock_ms): (Vec<_>, Vec<u64>) = timed.into_iter().unzip();
    for p in &points {
        assert!(
            p.conserved(),
            "{}/{} u={}: conservation violated (offered {} != completed {} + rejected {})",
            p.mix,
            p.policy,
            p.utilization,
            p.offered,
            p.completed,
            p.rejected
        );
        println!(
            "{:>8} {:>15} u={:<4} offered={:>5} rejected={:>4} p50={:>8} p99={:>8} p999={:>8} peak_q={}",
            p.mix,
            p.policy,
            p.utilization,
            p.offered,
            p.rejected,
            p.latency.p50,
            p.latency.p99,
            p.latency.p999,
            p.queue_peak
        );
    }
    println!(
        "{} points on {} workers in {:.1} ms",
        points.len(),
        workers,
        sweep_ms
    );

    let result = ServingSweepResult { points };
    let meta = SweepMeta {
        workers,
        total_wallclock_ms,
        points_wallclock_ms,
    };
    let json = result.to_json_with_meta(&meta);
    let errors = validate(&json);
    assert!(errors.is_empty(), "self-validation failed: {errors:?}");
    std::fs::write(&out, json).expect("write BENCH_serving.json");
    println!("wrote {out}");
}
