//! Regenerates Figure 3: copy and map time over input size for each DRAM
//! latency (the paper's 3.4x / 2.1x scaling observation).

use sva_bench::{parse_args, with_banner, RunSize};
use sva_soc::experiments::copy_vs_map;

fn main() {
    let size = parse_args();
    let latencies = size.latencies();
    let pages: &[u64] = if size == RunSize::Paper {
        &[4, 8, 16, 32, 64]
    } else {
        &[4, 16]
    };
    let result = copy_vs_map::run(pages, &latencies).expect("figure 3 sweep failed");
    with_banner(
        "Figure 3: copy and map time with input size and DRAM latency",
        || {
            let mut out = result.render();
            if let (Some(c), Some(m)) = (
                result.copy_scaling(16, 200, 1000),
                result.map_scaling(16, 200, 1000),
            ) {
                out.push_str(&format!(
                "16-page buffer, 200 -> 1000 cycles: copy x{c:.1} (paper: x3.4), map x{m:.1} (paper: x2.1)\n"
            ));
            }
            out
        },
    );
}
