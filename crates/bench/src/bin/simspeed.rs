//! The simulator-speed perf gate: simulated-cycles-per-wallclock-second on
//! a fixed set of stress points, written to `BENCH_simspeed.json` so speed
//! regressions are visible PR-over-PR.
//!
//! Stress points:
//!
//! * `timed_queue_deep` — a deep bounded queue (depth 64) driven by an
//!   out-of-order, slightly overloaded arrival process: the event-indexed
//!   [`TimedQueue`] against the retained linear-scan
//!   [`NaiveTimedQueue`] reference on the *same* batch (results are
//!   asserted identical). Records both engines' throughput and the
//!   speedup; the full run gates on the indexed engine being at least
//!   [`GATE_SPEEDUP`]× faster.
//! * `timed_queue_deep_compacted` — the same engine under watermark
//!   compaction on a monotone arrival process, recording the peak boundary
//!   count (the memory bound compaction buys).
//! * `fabric_4x4_demand` — a whole-platform point: 4 clusters × 4 memory
//!   channels with the two-level TLB hierarchy and demand paging.
//! * `fabric_deep_queues` — the split-transaction fabric with shallow
//!   (4/4) credit queues plus timed host traffic and the batched walker:
//!   the configuration that hammers `TimedQueue` hardest end-to-end.
//! * `fabric_long_window` — one long measurement window, many grants, no
//!   resets: an early long "poison pill" burst stretches the naive
//!   engine's backward scan window to its occupancy, then a monotone
//!   stream of short grants follows. The end-indexed `Fabric` (with
//!   periodic watermark compaction, peak live-set recorded) against the
//!   retained `NaiveFabric` on the same batch, outcomes asserted
//!   identical; the full run gates on [`GATE_SPEEDUP`].
//! * `fabric_weighted_hot` — the same poison-pill window under the
//!   `Weighted` policy with six initiators, keeping the deficit predicate
//!   (and its per-slot weight lookups) hot on every conflict probe.
//!   Naive baseline recorded, no gate.
//! * `ptw_walk_storm` — the translation path: a long sharded walk storm
//!   through the batched page-table walker, the indexed walk table (with
//!   its steady-state watermark-compaction discipline, peak live-record
//!   count recorded) against the retained
//!   [`sva_iommu::NaiveWalkTable`]-backed walker whose per-fetch probe and
//!   MSHR count scan the whole accumulated table. Per-walk outcomes and
//!   final walker statistics are asserted identical; the full run gates on
//!   [`GATE_SPEEDUP`].
//! * `pri_group_storm` — the demand-paging page-request path: repeated
//!   overlapping page-request groups against a deep bounded queue with
//!   periodic host pops, the `(device, page)` dedup index against the
//!   retained full-queue-scan probe (`enqueue_page_requests_scan`).
//!   Per-group `(enqueued, dropped)` outcomes and the popped request
//!   stream are digest-checked identical; the full run gates on
//!   [`GATE_SPEEDUP`].
//! * `backing_stream` — the functional data plane under a long sequential
//!   DMA copy storm: typed write/read passes over a cache-resident window
//!   (large windows leave both engines memory-bound and the gate would
//!   measure shared DRAM bandwidth, not engine overhead), the direct-map
//!   `SparseMemory` (last-frame memo hot) against the retained
//!   `NaiveSparseMemory` hash-map engine, read-backs and resident
//!   accounting digest-checked identical; the full run gates on
//!   [`GATE_SPEEDUP`]. The peak resident bytes land in the meta block.
//! * `backing_scatter` — the same engine pair under a random PTE-granular
//!   storm: walker-shaped bursts of typed 8-byte fetches inside one
//!   randomly-chosen table frame at a time (mostly absent — the sparse
//!   demand-paged case, where the memo answers repeat probes of an absent
//!   frame without touching the table), stores confined to a small
//!   resident set; gated on [`GATE_SPEEDUP`].
//!
//! A measured thread-scaling curve for the `par_map`-driven sweeps rides
//! along: the same point grid mapped at 1, 2, 4, … workers via
//! `par_map_with`, recording points-per-second and the speedup over one
//! worker. Each scaling point is tagged `"oversubscribed": true` when it
//! ran more workers than the machine has hardware threads — on narrow
//! hosts the tail of the curve measures scheduler fairness, not scaling,
//! and must not be read as a regression.
//!
//! Usage: `simspeed [--smoke] [--out <path>] [--validate <path>]`
//!
//! `--smoke` shrinks every stress point for CI (the speed *gate* is not
//! enforced — smoke numbers are schema fodder, not measurements);
//! `--validate <path>` checks an existing `BENCH_simspeed.json` for the
//! documented schema and exits. The writer self-validates its own output.

use std::num::NonZeroUsize;
use std::time::Instant;

use sva_bench::par::par_map_with;
use sva_common::rng::DeterministicRng;
use sva_common::{
    ArbitrationPolicy, Cycles, InitiatorId, Iova, MemPortReq, NaiveTimedQueue, PhysAddr,
    PortTiming, QueueDepths, TimedQueue, PAGE_SIZE,
};
use sva_iommu::{Iommu, IommuConfig, PageTableWalker};
use sva_kernels::KernelKind;
use sva_mem::{
    Fabric, FabricConfig, GrantOutcome, MemSysConfig, MemorySystem, NaiveFabric, NaiveSparseMemory,
    SparseMemory,
};
use sva_soc::config::SocVariant;
use sva_soc::experiments::fabric::{self, FabricKnobs, TlbHierarchyConfig, TlbKnobs};
use sva_vm::{AddressSpace, FrameAllocator, PageTable};

/// Minimum indexed-over-naive throughput multiple the full run gates on.
const GATE_SPEEDUP: f64 = 5.0;

/// One measured stress point.
struct SpeedPoint {
    name: &'static str,
    simulated_cycles: u64,
    wallclock_ms: f64,
    sim_cycles_per_sec: f64,
    /// The linear-scan reference on the same work (engine-twin points).
    naive: Option<NaiveBaseline>,
    /// Peak live indexed-state count: boundary events (queue points), live
    /// reservations (fabric points), live walk records or pending page
    /// requests (translation points).
    events_peak: Option<usize>,
    /// Peak resident bytes of the backing store (backing points only):
    /// surfaced in the meta block so sparseness regressions — a zero fill
    /// that starts materialising frames again, say — show up in the perf
    /// artifact.
    resident_bytes_peak: Option<u64>,
}

struct NaiveBaseline {
    wallclock_ms: f64,
    sim_cycles_per_sec: f64,
    speedup: f64,
}

/// One point of the thread-scaling curve.
struct ScalePoint {
    workers: usize,
    points: usize,
    wallclock_ms: f64,
    points_per_sec: f64,
    speedup_vs_1: f64,
    /// More workers than the machine has hardware threads: the point
    /// measures scheduler fairness, not scaling, and must not be read as a
    /// parallel-speedup regression.
    oversubscribed: bool,
}

fn cycles_per_sec(simulated: u64, wallclock_ms: f64) -> f64 {
    simulated as f64 / (wallclock_ms.max(1e-6) / 1e3)
}

/// The deep-queue arrival batch: 4 interleaved shards (out-of-order pushes)
/// whose offered load slightly exceeds the depth, so the queue hovers full
/// and every push exercises the admission walk.
fn deep_queue_batch(pushes: usize) -> Vec<(u64, u64)> {
    let mut rng = DeterministicRng::new(0x5135_BEEF);
    let shards = 4usize;
    let mut cursors = vec![0u64; shards];
    let mut batch = Vec::with_capacity(pushes);
    for i in 0..pushes {
        let shard = i % shards;
        cursors[shard] += rng.next_below(10);
        batch.push((cursors[shard], cursors[shard] + rng.next_below(600)));
    }
    batch
}

/// Runs one engine over the batch; returns (horizon cycles, wallclock ms,
/// digest of results for the identity check).
fn drive<Q>(batch: &[(u64, u64)], mut push: Q) -> (u64, f64, u64)
where
    Q: FnMut(u64, u64) -> (u64, usize),
{
    let start = Instant::now();
    let mut horizon = 0u64;
    let mut digest = 0u64;
    for &(enter, exit) in batch {
        let (admitted, occ) = push(enter, exit);
        horizon = horizon.max(exit.max(admitted + 1));
        digest = digest
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add(admitted ^ (occ as u64) << 48);
    }
    (horizon, start.elapsed().as_secs_f64() * 1e3, digest)
}

fn timed_queue_deep(pushes: usize) -> SpeedPoint {
    let batch = deep_queue_batch(pushes);
    let mut indexed = TimedQueue::new(64);
    let (horizon, indexed_ms, indexed_digest) = drive(&batch, |e, x| indexed.push(e, x));
    let mut naive = NaiveTimedQueue::new(64);
    let (_, naive_ms, naive_digest) = drive(&batch, |e, x| naive.push(e, x));
    assert_eq!(
        indexed_digest, naive_digest,
        "indexed and naive engines diverged on the stress batch"
    );
    assert_eq!(indexed.stall_cycles(), naive.stall_cycles());
    SpeedPoint {
        name: "timed_queue_deep",
        simulated_cycles: horizon,
        wallclock_ms: indexed_ms,
        sim_cycles_per_sec: cycles_per_sec(horizon, indexed_ms),
        naive: Some(NaiveBaseline {
            wallclock_ms: naive_ms,
            sim_cycles_per_sec: cycles_per_sec(horizon, naive_ms),
            speedup: naive_ms / indexed_ms.max(1e-6),
        }),
        events_peak: None,
        resident_bytes_peak: None,
    }
}

fn timed_queue_deep_compacted(pushes: usize) -> SpeedPoint {
    // Monotone arrivals: each batch's earliest arrival is a valid watermark
    // for everything before it.
    let mut rng = DeterministicRng::new(0x5135_C0DE);
    let mut queue = TimedQueue::new(64);
    let mut cursor = 0u64;
    let mut horizon = 0u64;
    let mut events_peak = 0usize;
    let start = Instant::now();
    for i in 0..pushes {
        if i % 512 == 0 {
            queue.compact_before(cursor);
            events_peak = events_peak.max(queue.event_count());
        }
        cursor += rng.next_below(10);
        let exit = cursor + rng.next_below(600);
        let (admitted, _) = queue.push(cursor, exit);
        horizon = horizon.max(exit.max(admitted + 1));
    }
    let wallclock_ms = start.elapsed().as_secs_f64() * 1e3;
    events_peak = events_peak.max(queue.event_count());
    SpeedPoint {
        name: "timed_queue_deep_compacted",
        simulated_cycles: horizon,
        wallclock_ms,
        sim_cycles_per_sec: cycles_per_sec(horizon, wallclock_ms),
        naive: None,
        events_peak: Some(events_peak),
        resident_bytes_peak: None,
    }
}

/// The long-window fabric batch: one early "poison pill" burst of
/// `pill_occ` cycles from device 0, then `grants` short monotone grants
/// from `devices` rotating initiators starting after the pill drains. The
/// pill stretches the naive engine's backward start-window scan to
/// `pill_occ` cycles of mostly-finished history on every later grant; the
/// end-indexed probe only ever sees the live tail.
fn fabric_window_batch(
    seed: u64,
    grants: usize,
    devices: u32,
    pill_occ: u64,
    rounds: bool,
) -> Vec<(MemPortReq, PortTiming)> {
    let mut rng = DeterministicRng::new(seed);
    let mut batch = Vec::with_capacity(grants + 1);
    batch.push((
        MemPortReq::read(
            InitiatorId::dma(0),
            PhysAddr::new(0x8000_0000),
            pill_occ * 8,
        )
        .as_burst()
        .at(Cycles::ZERO),
        PortTiming {
            latency: Cycles::new(100),
            occupancy: Cycles::new(pill_occ),
        },
    ));
    let mut cursor = pill_occ;
    for i in 0..grants {
        let dev = (i as u32) % devices;
        let occ = if rounds {
            // Round mode: every initiator arrives at the same instant with
            // identical occupancy, so each grant probes live conflicts and
            // keeps the arbitration predicate hot.
            if dev == 0 {
                cursor += 620 + rng.next_below(80);
            }
            100
        } else {
            // Stream mode: underloaded monotone traffic — almost every
            // reservation is finished history by the time the next grant
            // places.
            cursor += 20 + rng.next_below(40);
            4 + rng.next_below(12)
        };
        batch.push((
            MemPortReq::read(
                InitiatorId::dma(1 + dev),
                PhysAddr::new(0x8000_0000),
                occ * 8,
            )
            .as_burst()
            .at(Cycles::new(cursor)),
            PortTiming {
                latency: Cycles::new(100),
                occupancy: Cycles::new(occ),
            },
        ));
    }
    batch
}

/// Runs one placement engine over a grant batch; returns (horizon cycles,
/// wallclock ms, digest of the grant outcomes for the identity check).
fn drive_grants(
    batch: &[(MemPortReq, PortTiming)],
    mut admit: impl FnMut(usize, &MemPortReq, PortTiming) -> GrantOutcome,
) -> (u64, f64, u64) {
    let start = Instant::now();
    let mut horizon = 0u64;
    let mut digest = 0u64;
    for (i, (req, timing)) in batch.iter().enumerate() {
        let out = admit(i, req, *timing);
        horizon = horizon.max(req.arrival.raw() + out.total_delay().raw() + timing.occupancy.raw());
        digest = digest
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add(out.queue.raw() ^ out.issue_stall.raw() << 32);
    }
    (horizon, start.elapsed().as_secs_f64() * 1e3, digest)
}

/// Both placement engines over the same batch, outcomes asserted
/// bit-identical. The indexed engine additionally runs its steady-state
/// compaction discipline every 1024 grants (arrivals are monotone, so the
/// current arrival is a valid no-earlier-arrival watermark), recording the
/// peak live reservation count.
fn fabric_engine_point(
    name: &'static str,
    config: FabricConfig,
    batch: &[(MemPortReq, PortTiming)],
) -> SpeedPoint {
    let mut indexed = Fabric::new(config.clone());
    let mut events_peak = 0usize;
    let (horizon, indexed_ms, indexed_digest) = drive_grants(batch, |i, req, timing| {
        let out = indexed.admit(req, timing);
        if i % 1024 == 1023 {
            indexed.compact_before(req.arrival);
        }
        events_peak = events_peak.max(indexed.event_count());
        out
    });
    let mut naive = NaiveFabric::new(config);
    let (_, naive_ms, naive_digest) =
        drive_grants(batch, |_, req, timing| naive.admit(req, timing));
    assert_eq!(
        indexed_digest, naive_digest,
        "{name}: indexed and naive placement engines diverged"
    );
    assert_eq!(indexed.total(), naive.total(), "{name}: totals diverged");
    SpeedPoint {
        name,
        simulated_cycles: horizon,
        wallclock_ms: indexed_ms,
        sim_cycles_per_sec: cycles_per_sec(horizon, indexed_ms),
        naive: Some(NaiveBaseline {
            wallclock_ms: naive_ms,
            sim_cycles_per_sec: cycles_per_sec(horizon, naive_ms),
            speedup: naive_ms / indexed_ms.max(1e-6),
        }),
        events_peak: Some(events_peak),
        resident_bytes_peak: None,
    }
}

fn fabric_long_window(grants: usize) -> SpeedPoint {
    let batch = fabric_window_batch(0xFAB_0BA7, grants, 3, 50_000, false);
    fabric_engine_point("fabric_long_window", FabricConfig::default(), &batch)
}

fn fabric_weighted_hot(grants: usize) -> SpeedPoint {
    let batch = fabric_window_batch(0xFAB_3077, grants, 6, 50_000, true);
    let config = FabricConfig {
        policy: ArbitrationPolicy::Weighted(vec![8, 4, 2, 1, 1, 1]),
        ..FabricConfig::default()
    };
    fabric_engine_point("fabric_weighted_hot", config, &batch)
}

/// Pages in the walk storm's mapped working set: wide enough that the
/// naive table accumulates thousands of per-level records to scan.
const PTW_STORM_PAGES: u64 = 48;

/// Builds the walk-storm batch: four conceptually concurrent shards with
/// independently advancing monotone cursors, interleaved exactly like the
/// platform's sharded offload, over a working set dense enough that walks
/// coalesce onto in-flight PTE reads. Returns `(page, arrival)` pairs.
fn ptw_storm_batch(walks: usize) -> Vec<(u64, u64)> {
    let mut rng = DeterministicRng::new(0x977A_5708);
    let shards = 4usize;
    let mut cursors = vec![0u64; shards];
    let mut batch = Vec::with_capacity(walks);
    for i in 0..walks {
        let shard = i % shards;
        cursors[shard] += rng.next_below(50);
        batch.push((rng.next_below(PTW_STORM_PAGES), cursors[shard]));
    }
    batch
}

/// A deterministic memory system + address space twin for the walk storm.
fn ptw_environment() -> (MemorySystem, AddressSpace, Iova) {
    let mut mem = MemorySystem::new(MemSysConfig {
        dram_latency: Cycles::new(400),
        ..MemSysConfig::default()
    });
    let mut frames = FrameAllocator::linux_pool();
    let mut space = AddressSpace::new(&mut mem, &mut frames).expect("storm address space");
    let va = space
        .alloc_buffer(&mut mem, &mut frames, PTW_STORM_PAGES * PAGE_SIZE)
        .expect("storm working set");
    (mem, space, Iova::from_virt(va))
}

/// Drives one walker over the storm batch in its own environment twin.
/// With `compact`, the indexed walker folds dead windows every 512 walks
/// at the no-earlier-arrival watermark (the minimum of the four shard
/// cursors — the last four arrivals are exactly the shards' frontiers).
/// Returns (horizon, wallclock ms, outcome digest, peak live records).
fn drive_ptw(
    walker: &mut PageTableWalker,
    batch: &[(u64, u64)],
    compact: bool,
) -> (u64, f64, u64, usize) {
    let (mut mem, space, base) = ptw_environment();
    let start = Instant::now();
    let mut horizon = 0u64;
    let mut digest = 0u64;
    let mut events_peak = 0usize;
    for (i, &(page, t)) in batch.iter().enumerate() {
        let res = walker
            .walk_at(
                &mut mem,
                space.root(),
                base + page * PAGE_SIZE,
                false,
                Cycles::new(t),
            )
            .expect("storm pages are mapped");
        horizon = horizon.max(t + res.cycles.raw());
        digest = digest.wrapping_mul(0x100_0000_01b3).wrapping_add(
            res.cycles.raw() ^ u64::from(res.reads) << 40 ^ u64::from(res.coalesced) << 52,
        );
        if compact {
            if i % 512 == 511 {
                let watermark = batch[i - 3..=i].iter().map(|&(_, t)| t).min().unwrap();
                walker.compact_walk_table_before(Cycles::new(watermark));
            }
            events_peak = events_peak.max(walker.walk_table_events());
        }
    }
    (
        horizon,
        start.elapsed().as_secs_f64() * 1e3,
        digest,
        events_peak,
    )
}

fn ptw_walk_storm(walks: usize) -> SpeedPoint {
    let batch = ptw_storm_batch(walks);
    let mut indexed = PageTableWalker::with_batching(8);
    let (horizon, indexed_ms, indexed_digest, events_peak) = drive_ptw(&mut indexed, &batch, true);
    let mut naive = PageTableWalker::with_naive_batching(8);
    let (_, naive_ms, naive_digest, _) = drive_ptw(&mut naive, &batch, false);
    assert_eq!(
        indexed_digest, naive_digest,
        "ptw_walk_storm: indexed and naive walk tables diverged"
    );
    assert_eq!(indexed.pte_reads(), naive.pte_reads());
    assert_eq!(indexed.coalesced_reads(), naive.coalesced_reads());
    assert_eq!(indexed.walk_time(), naive.walk_time());
    SpeedPoint {
        name: "ptw_walk_storm",
        simulated_cycles: horizon,
        wallclock_ms: indexed_ms,
        sim_cycles_per_sec: cycles_per_sec(horizon, indexed_ms),
        naive: Some(NaiveBaseline {
            wallclock_ms: naive_ms,
            sim_cycles_per_sec: cycles_per_sec(horizon, naive_ms),
            speedup: naive_ms / indexed_ms.max(1e-6),
        }),
        events_peak: Some(events_peak),
        resident_bytes_peak: None,
    }
}

/// IOVA pages in the page-request storm's working set per device: with two
/// devices this matches the full-mode queue depth, so the queue saturates
/// on dedup suppression (the expensive probe) rather than pure overflow.
const PRI_STORM_PAGES: u64 = 4096;

/// Drives one IOMMU through the group storm: overlapping 16-page request
/// groups from two devices against an empty IO table (every page is a
/// candidate), four host pops every eight groups. Returns (horizon,
/// wallclock ms, digest over group outcomes and the popped stream).
fn drive_pri(iommu: &mut Iommu, mem: &MemorySystem, groups: usize, scan: bool) -> (u64, f64, u64) {
    let mut rng = DeterministicRng::new(0x9B1_5708);
    let base = Iova::new(0x4000_0000);
    let start = Instant::now();
    let mut now = 0u64;
    let mut digest = 0u64;
    for g in 0..groups {
        now += 7;
        let dev = 1 + rng.next_below(2) as u32;
        let first = base + rng.next_below(PRI_STORM_PAGES) * PAGE_SIZE;
        let len = 16 * PAGE_SIZE;
        let (enqueued, dropped) = if scan {
            iommu.enqueue_page_requests_scan(mem, dev, first, len, false, Cycles::new(now))
        } else {
            iommu.enqueue_page_requests(mem, dev, first, len, false, Cycles::new(now))
        };
        digest = digest
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add(enqueued ^ dropped << 32);
        if g % 8 == 7 {
            for _ in 0..4 {
                if let Some(r) = iommu.pop_page_request() {
                    digest = digest
                        .wrapping_mul(0x100_0000_01b3)
                        .wrapping_add(r.iova.raw() ^ u64::from(r.device_id) << 48);
                }
            }
        }
    }
    digest = digest
        .wrapping_mul(0x100_0000_01b3)
        .wrapping_add(iommu.pending_page_requests() as u64);
    (now, start.elapsed().as_secs_f64() * 1e3, digest)
}

/// A fresh IOMMU twin for the page-request storm: two devices attached to
/// one empty IO page table, a `entries`-deep page-request queue.
fn pri_environment(entries: usize) -> (MemorySystem, Iommu) {
    let mut mem = MemorySystem::default();
    let mut frames = FrameAllocator::linux_pool();
    let io_root = PageTable::create(&mut frames)
        .expect("storm IO table")
        .root();
    let mut iommu = Iommu::new(IommuConfig {
        demand_paging: true,
        page_request_entries: entries,
        ..IommuConfig::default()
    });
    for dev in [1u32, 2] {
        iommu
            .attach_device(&mut mem, &mut frames, dev, 0, io_root)
            .expect("storm device");
    }
    (mem, iommu)
}

fn pri_group_storm(groups: usize, entries: usize) -> SpeedPoint {
    let (mem_a, mut indexed) = pri_environment(entries);
    let (horizon, indexed_ms, indexed_digest) = drive_pri(&mut indexed, &mem_a, groups, false);
    let (mem_b, mut scan) = pri_environment(entries);
    let (_, scan_ms, scan_digest) = drive_pri(&mut scan, &mem_b, groups, true);
    assert_eq!(
        indexed_digest, scan_digest,
        "pri_group_storm: dedup index and queue scan diverged"
    );
    assert_eq!(
        indexed.stats().page_request_pending_peak,
        scan.stats().page_request_pending_peak
    );
    SpeedPoint {
        name: "pri_group_storm",
        simulated_cycles: horizon,
        wallclock_ms: indexed_ms,
        sim_cycles_per_sec: cycles_per_sec(horizon, indexed_ms),
        naive: Some(NaiveBaseline {
            wallclock_ms: scan_ms,
            sim_cycles_per_sec: cycles_per_sec(horizon, scan_ms),
            speedup: scan_ms / indexed_ms.max(1e-6),
        }),
        events_peak: Some(indexed.stats().page_request_pending_peak),
        resident_bytes_peak: None,
    }
}

/// Local dispatch surface for the backing-store twin run: both store
/// engines expose the same methods, so the storm drivers are generic over
/// this trait instead of duplicating the loops. Offsets are in-bounds by
/// construction, so errors are unwrapped.
trait ByteStore {
    fn read_u64(&self, offset: u64) -> u64;
    fn write_u64(&mut self, offset: u64, value: u64);
    fn resident_bytes(&self) -> u64;
}

impl ByteStore for SparseMemory {
    fn read_u64(&self, offset: u64) -> u64 {
        SparseMemory::read_u64(self, offset).expect("in-bounds")
    }
    fn write_u64(&mut self, offset: u64, value: u64) {
        SparseMemory::write_u64(self, offset, value).expect("in-bounds");
    }
    fn resident_bytes(&self) -> u64 {
        SparseMemory::resident_bytes(self)
    }
}

impl ByteStore for NaiveSparseMemory {
    fn read_u64(&self, offset: u64) -> u64 {
        NaiveSparseMemory::read_u64(self, offset).expect("in-bounds")
    }
    fn write_u64(&mut self, offset: u64, value: u64) {
        NaiveSparseMemory::write_u64(self, offset, value).expect("in-bounds");
    }
    fn resident_bytes(&self) -> u64 {
        NaiveSparseMemory::resident_bytes(self)
    }
}

/// Drives the sequential copy storm at bus-beat (8-byte) granularity —
/// the granularity the platform's data plane actually issues (DMA beats,
/// PTE fetches, element reads): full write passes alternating with full
/// read passes over a `window`-byte working set, so a frame is revisited
/// `PAGE_SIZE / 8` consecutive times — the access shape the last-frame
/// memo is built for. Returns (wallclock ms, observable digest, resident
/// bytes — peak equals final since nothing is cleared).
fn drive_stream<S: ByteStore>(store: &mut S, ops: usize, window: u64) -> (f64, u64, u64) {
    let slots = window / 8;
    let passes = (ops as u64).div_ceil(slots);
    let start = Instant::now();
    let mut digest = 0u64;
    for pass in 0..passes {
        if pass % 2 == 0 {
            let salt = pass.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            for slot in 0..slots {
                store.write_u64(slot * 8, slot ^ salt);
            }
        } else {
            for slot in 0..slots {
                // Rotate-xor fold: order-sensitive but a single-cycle
                // dependency, so the digest chain does not mask the engine
                // cost being measured (a multiply chain would put three
                // serial cycles on every read for both engines alike).
                digest = digest.rotate_left(1) ^ store.read_u64(slot * 8);
            }
        }
    }
    let wallclock_ms = start.elapsed().as_secs_f64() * 1e3;
    let resident = store.resident_bytes();
    digest = digest.wrapping_mul(0x100_0000_01b3).wrapping_add(resident);
    (wallclock_ms, digest, resident)
}

/// Only one frame in this stride of the scatter window is ever written:
/// the storm models a demand-paged page-table pool, where the live tables
/// are a small resident set inside a large, mostly-unmapped region and
/// most PTE fetches hit absent frames (unmapped entries read as zero).
const SCATTER_RESIDENT_STRIDE: u64 = 16;

/// Precomputed scatter batch: `u32` slot indexes over the window,
/// generated outside the timed loop (RNG cost inside the loop would
/// compress the engine ratio being gated). Each group of eight is a
/// page-table-walker-shaped burst — seven PTE fetches at random entries
/// of one randomly-chosen table frame (mostly absent: unmapped tables
/// read as zero) — followed by one store into the resident frame set.
fn scatter_batch(ops: usize, window: u64) -> Vec<u32> {
    let mut rng = DeterministicRng::new(0xBAC_5CA7);
    let frames = window / PAGE_SIZE;
    let slots_per_frame = PAGE_SIZE / 8;
    let mut burst_frame = 0u64;
    (0..ops)
        .map(|i| {
            match i % 8 {
                // One store per burst, confined to the resident frames.
                7 => {
                    let frame =
                        rng.next_below(frames / SCATTER_RESIDENT_STRIDE) * SCATTER_RESIDENT_STRIDE;
                    (frame * slots_per_frame + rng.next_below(slots_per_frame)) as u32
                }
                // Start of a burst: pick the table frame for this group.
                0 => {
                    burst_frame = rng.next_below(frames);
                    (burst_frame * slots_per_frame + rng.next_below(slots_per_frame)) as u32
                }
                // Rest of the burst: more entries of the same table frame.
                _ => (burst_frame * slots_per_frame + rng.next_below(slots_per_frame)) as u32,
            }
        })
        .collect()
}

/// Drives the PTE-granular scatter storm: bursts of typed 8-byte fetches,
/// each burst inside one randomly-chosen table frame (mostly absent
/// frames — the sparse-table case, and the locality shape the last-frame
/// memo exists for), with stores confined to the resident set, seven
/// fetches per store. Returns (wallclock ms, observable digest, resident
/// bytes).
fn drive_scatter<S: ByteStore>(store: &mut S, batch: &[u32]) -> (f64, u64, u64) {
    assert_eq!(batch.len() % 8, 0, "scatter batch is whole groups of eight");
    let start = Instant::now();
    // Two independent fold lanes: the fold stays order-sensitive inside
    // each lane, but a single serial rotate-xor chain would add two
    // dependent cycles to every fetch on both engines alike — shared cost
    // that compresses the engine ratio being gated.
    let (mut d0, mut d1) = (0u64, 0u64);
    for group in batch.chunks_exact(8) {
        d0 = d0.rotate_left(1) ^ store.read_u64(u64::from(group[0]) * 8);
        d1 = d1.rotate_left(1) ^ store.read_u64(u64::from(group[1]) * 8);
        d0 = d0.rotate_left(1) ^ store.read_u64(u64::from(group[2]) * 8);
        d1 = d1.rotate_left(1) ^ store.read_u64(u64::from(group[3]) * 8);
        d0 = d0.rotate_left(1) ^ store.read_u64(u64::from(group[4]) * 8);
        d1 = d1.rotate_left(1) ^ store.read_u64(u64::from(group[5]) * 8);
        d0 = d0.rotate_left(1) ^ store.read_u64(u64::from(group[6]) * 8);
        let w = u64::from(group[7]) * 8;
        store.write_u64(w, w.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    let wallclock_ms = start.elapsed().as_secs_f64() * 1e3;
    let resident = store.resident_bytes();
    let digest = (d0.rotate_left(7) ^ d1)
        .wrapping_mul(0x100_0000_01b3)
        .wrapping_add(resident);
    (wallclock_ms, digest, resident)
}

/// Repetitions per engine for the backing points, best wallclock taken.
/// The backing drives are short enough (tens of ms) that scheduler
/// interference on a shared host lands inside the measurement window, and
/// that interference is one-sided — it only ever slows a run — so the
/// minimum over a few repetitions is the faithful engine-cost estimator.
/// Repetitions are *interleaved* (indexed, naive, indexed, naive, …) so
/// both engines sample the same contention landscape: back-to-back blocks
/// would let a load shift between the blocks masquerade as an engine
/// ratio change. Every repetition's digest is cross-checked.
const BACKING_REPS: usize = 5;

/// Folds one repetition's `(wallclock, digest, resident)` into the
/// best-so-far, asserting the observables never vary across repetitions.
fn fold_rep(best: &mut Option<(f64, u64, u64)>, rep: (f64, u64, u64)) {
    let (ms, digest, resident) = rep;
    if let Some((best_ms, best_digest, best_resident)) = *best {
        assert_eq!(digest, best_digest, "digest varies across repetitions");
        assert_eq!(resident, best_resident);
        *best = Some((ms.min(best_ms), digest, resident));
    } else {
        *best = Some(rep);
    }
}

/// Runs the indexed and naive drives [`BACKING_REPS`] times each,
/// interleaved, on a fresh store per repetition; returns each engine's
/// best `(wallclock, digest, resident)`.
fn best_of_paired_reps(
    mut run_indexed: impl FnMut() -> (f64, u64, u64),
    mut run_naive: impl FnMut() -> (f64, u64, u64),
) -> ((f64, u64, u64), (f64, u64, u64)) {
    let mut best_indexed = None;
    let mut best_naive = None;
    for _ in 0..BACKING_REPS {
        fold_rep(&mut best_indexed, run_indexed());
        fold_rep(&mut best_naive, run_naive());
    }
    (
        best_indexed.expect("at least one repetition"),
        best_naive.expect("at least one repetition"),
    )
}

/// The long sequential DMA copy storm: the direct-map store (memo hot —
/// `PAGE_SIZE / 8` consecutive same-frame hits per frame) against the
/// retained hash-map engine on the same pass schedule, observables
/// digest-checked identical. `simulated_cycles` is the bus-beat proxy for
/// the data moved (one 8-byte beat per op), so cycles/s is comparable
/// across backing points.
fn backing_stream(ops: usize, window: u64) -> SpeedPoint {
    let ((indexed_ms, indexed_digest, resident), (naive_ms, naive_digest, naive_resident)) =
        best_of_paired_reps(
            || drive_stream(&mut SparseMemory::new(window), ops, window),
            || drive_stream(&mut NaiveSparseMemory::new(window), ops, window),
        );
    assert_eq!(
        indexed_digest, naive_digest,
        "backing_stream: direct-map and hash-map engines diverged"
    );
    assert_eq!(resident, naive_resident);
    // Beats actually issued: whole passes over the window.
    let slots = window / 8;
    let beats = (ops as u64).div_ceil(slots) * slots;
    SpeedPoint {
        name: "backing_stream",
        simulated_cycles: beats,
        wallclock_ms: indexed_ms,
        sim_cycles_per_sec: cycles_per_sec(beats, indexed_ms),
        naive: Some(NaiveBaseline {
            wallclock_ms: naive_ms,
            sim_cycles_per_sec: cycles_per_sec(beats, naive_ms),
            speedup: naive_ms / indexed_ms.max(1e-6),
        }),
        events_peak: None,
        resident_bytes_peak: Some(resident),
    }
}

/// The random PTE-granular storm: typed 8-byte read-modify-writes
/// scattered over the window (memo mostly cold across entries — the win is
/// the direct-map probe against the hash probe plus generic chunk loop,
/// twice per entry). One beat per batch entry in the proxy.
fn backing_scatter(ops: usize, window: u64) -> SpeedPoint {
    let batch = scatter_batch(ops, window);
    let ((indexed_ms, indexed_digest, resident), (naive_ms, naive_digest, naive_resident)) =
        best_of_paired_reps(
            || drive_scatter(&mut SparseMemory::new(window), &batch),
            || drive_scatter(&mut NaiveSparseMemory::new(window), &batch),
        );
    assert_eq!(
        indexed_digest, naive_digest,
        "backing_scatter: direct-map and hash-map engines diverged"
    );
    assert_eq!(resident, naive_resident);
    let beats = ops as u64;
    SpeedPoint {
        name: "backing_scatter",
        simulated_cycles: beats,
        wallclock_ms: indexed_ms,
        sim_cycles_per_sec: cycles_per_sec(beats, indexed_ms),
        naive: Some(NaiveBaseline {
            wallclock_ms: naive_ms,
            sim_cycles_per_sec: cycles_per_sec(beats, naive_ms),
            speedup: naive_ms / indexed_ms.max(1e-6),
        }),
        events_peak: None,
        resident_bytes_peak: Some(resident),
    }
}

fn fabric_point(
    name: &'static str,
    clusters: usize,
    channels: usize,
    depths: QueueDepths,
    knobs: FabricKnobs,
    tlb: TlbKnobs,
) -> SpeedPoint {
    let start = Instant::now();
    let point = fabric::run_point(
        KernelKind::Gemm,
        false,
        clusters,
        SocVariant::IommuLlc,
        200,
        channels,
        &ArbitrationPolicy::RoundRobin,
        depths,
        knobs,
        tlb,
    )
    .expect("fabric stress point");
    let wallclock_ms = start.elapsed().as_secs_f64() * 1e3;
    SpeedPoint {
        name,
        simulated_cycles: point.total,
        wallclock_ms,
        sim_cycles_per_sec: cycles_per_sec(point.total, wallclock_ms),
        naive: None,
        events_peak: None,
        resident_bytes_peak: None,
    }
}

/// Maps the same cheap point grid at each worker count, measuring the
/// throughput curve of the `par_map` machinery itself.
fn thread_scaling(smoke: bool) -> Vec<ScalePoint> {
    let hw = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    // Doubling worker counts up to the hardware width, and always through 4
    // so oversubscription is measured even on narrow machines (the curve
    // should go flat there, not down — a regression in the work
    // distribution shows up as a drop).
    let top = hw.clamp(4, 8);
    let mut counts = vec![1usize];
    while let Some(&last) = counts.last() {
        if last * 2 > top {
            break;
        }
        counts.push(last * 2);
    }
    let items_per_run = if smoke {
        4
    } else {
        counts.last().copied().unwrap_or(1) * 4
    };
    let mut curve: Vec<ScalePoint> = Vec::new();
    for &workers in &counts {
        let grid: Vec<u64> = vec![200; items_per_run];
        let start = Instant::now();
        let points = par_map_with(grid, workers, |latency| {
            fabric::run_point(
                KernelKind::Gemm,
                false,
                1,
                SocVariant::IommuLlc,
                latency,
                1,
                &ArbitrationPolicy::RoundRobin,
                QueueDepths::UNBOUNDED,
                FabricKnobs::default(),
                TlbKnobs::default(),
            )
            .expect("scaling point")
            .total
        });
        let wallclock_ms = start.elapsed().as_secs_f64() * 1e3;
        let points_per_sec = points.len() as f64 / (wallclock_ms.max(1e-6) / 1e3);
        let speedup_vs_1 = curve
            .first()
            .map(|base: &ScalePoint| wallclock_ms_ratio(base.wallclock_ms, wallclock_ms))
            .unwrap_or(1.0);
        curve.push(ScalePoint {
            workers,
            points: points.len(),
            wallclock_ms,
            points_per_sec,
            speedup_vs_1,
            oversubscribed: workers > hw,
        });
    }
    curve
}

fn wallclock_ms_ratio(base: f64, now: f64) -> f64 {
    base / now.max(1e-6)
}

fn to_json(mode: &str, points: &[SpeedPoint], scaling: &[ScalePoint]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"simspeed\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    let peaks: Vec<String> = points
        .iter()
        .filter_map(|p| {
            p.resident_bytes_peak
                .map(|b| format!("\"{}\": {b}", p.name))
        })
        .collect();
    out.push_str(&format!(
        "  \"meta\": {{\"hardware_threads\": {}, \"resident_bytes_peak\": {{{}}}}},\n",
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
        peaks.join(", ")
    ));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"simulated_cycles\": {}, \"wallclock_ms\": {:.3}, \
             \"sim_cycles_per_sec\": {:.0}",
            p.name, p.simulated_cycles, p.wallclock_ms, p.sim_cycles_per_sec
        ));
        if let Some(naive) = &p.naive {
            out.push_str(&format!(
                ", \"naive_wallclock_ms\": {:.3}, \"naive_sim_cycles_per_sec\": {:.0}, \
                 \"speedup_vs_naive\": {:.2}",
                naive.wallclock_ms, naive.sim_cycles_per_sec, naive.speedup
            ));
        }
        if let Some(events) = p.events_peak {
            out.push_str(&format!(", \"events_peak\": {events}"));
        }
        out.push_str(&format!(
            "}}{}\n",
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"thread_scaling\": [\n");
    for (i, s) in scaling.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"points\": {}, \"wallclock_ms\": {:.3}, \
             \"points_per_sec\": {:.2}, \"speedup_vs_1\": {:.2}, \
             \"oversubscribed\": {}}}{}\n",
            s.workers,
            s.points,
            s.wallclock_ms,
            s.points_per_sec,
            s.speedup_vs_1,
            s.oversubscribed,
            if i + 1 == scaling.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts the unsigned integer following `"key": ` in `text`, if any.
fn field_u64(text: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let start = text.find(&pat)? + pat.len();
    let digits: String = text[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Schema check of a `BENCH_simspeed.json` (hand-rolled; the build is
/// offline and carries no serde_json). Verifies the experiment tag, the
/// required top-level sections, the required stress-point names, the
/// per-point required keys, that the engine-comparison points carry the
/// naive baseline, and that every thread-scaling point's
/// `oversubscribed` flag agrees with `workers > hardware_threads`.
/// Returns every violation found.
fn validate(text: &str) -> Vec<String> {
    let mut errors = Vec::new();
    let mut require = |needle: &str, what: &str| {
        if !text.contains(needle) {
            errors.push(format!("missing {what}: expected `{needle}`"));
        }
    };
    require("\"experiment\": \"simspeed\"", "experiment tag");
    require("\"mode\": \"", "mode field");
    require("\"meta\": {", "meta section");
    require("\"hardware_threads\": ", "meta.hardware_threads");
    require("\"resident_bytes_peak\": {", "meta.resident_bytes_peak");
    require("\"points\": [", "points section");
    require("\"thread_scaling\": [", "thread_scaling section");
    for name in [
        "timed_queue_deep",
        "timed_queue_deep_compacted",
        "fabric_4x4_demand",
        "fabric_deep_queues",
        "fabric_long_window",
        "fabric_weighted_hot",
        "ptw_walk_storm",
        "pri_group_storm",
        "backing_stream",
        "backing_scatter",
    ] {
        require(&format!("\"name\": \"{name}\""), "stress point");
    }
    for key in ["simulated_cycles", "wallclock_ms", "sim_cycles_per_sec"] {
        require(&format!("\"{key}\": "), "per-point key");
    }
    for key in [
        "naive_wallclock_ms",
        "naive_sim_cycles_per_sec",
        "speedup_vs_naive",
    ] {
        require(&format!("\"{key}\": "), "naive-baseline key");
    }
    require("\"events_peak\": ", "compaction observable");
    for key in [
        "workers",
        "points_per_sec",
        "speedup_vs_1",
        "oversubscribed",
    ] {
        require(&format!("\"{key}\": "), "thread-scaling key");
    }
    // Oversubscription honesty: every scaling line's flag must agree with
    // workers vs the recorded hardware width.
    let hw = field_u64(text, "hardware_threads");
    for line in text.lines() {
        let Some(workers) = field_u64(line, "workers") else {
            continue;
        };
        let Some(hw) = hw else {
            continue;
        };
        let expected = format!("\"oversubscribed\": {}", workers > hw);
        if !line.contains(&expected) {
            errors.push(format!(
                "thread_scaling workers={workers}: expected `{expected}` \
                 (hardware_threads={hw})"
            ));
        }
    }
    let opens = text.matches('{').count();
    let closes = text.matches('}').count();
    if opens != closes {
        errors.push(format!("unbalanced braces: {opens} open vs {closes} close"));
    }
    errors
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--validate") {
        let path = args.get(i + 1).expect("--validate <path>");
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let errors = validate(&text);
        if errors.is_empty() {
            println!("{path}: schema ok");
            return;
        }
        for e in &errors {
            eprintln!("{path}: {e}");
        }
        std::process::exit(1);
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_simspeed.json".to_string());

    let pushes = if smoke { 2_000 } else { 20_000 };
    let (clusters, channels) = if smoke { (2, 2) } else { (4, 4) };

    let deep = timed_queue_deep(pushes);
    let compacted = timed_queue_deep_compacted(pushes);
    let demand = fabric_point(
        "fabric_4x4_demand",
        clusters,
        channels,
        QueueDepths::UNBOUNDED,
        FabricKnobs::default(),
        TlbKnobs {
            hierarchy: Some(TlbHierarchyConfig::default()),
            demand_paging: true,
        },
    );
    let deep_queues = fabric_point(
        "fabric_deep_queues",
        clusters,
        1,
        QueueDepths::bounded(4, 4),
        FabricKnobs {
            host_traffic: true,
            ptw_batching: true,
        },
        TlbKnobs::default(),
    );
    let long_window = fabric_long_window(pushes);
    let weighted_hot = fabric_weighted_hot(pushes);
    let walk_storm = ptw_walk_storm(if smoke { 500 } else { 5_000 });
    let group_storm = if smoke {
        pri_group_storm(120, 512)
    } else {
        pri_group_storm(2_000, 8_192)
    };
    let stream = if smoke {
        backing_stream(48_000, 128 << 10)
    } else {
        backing_stream(6_000_000, 128 << 10)
    };
    let scatter = if smoke {
        backing_scatter(16_000, 4 << 20)
    } else {
        backing_scatter(4_000_000, 4 << 20)
    };
    let scaling = thread_scaling(smoke);

    let points = [
        deep,
        compacted,
        demand,
        deep_queues,
        long_window,
        weighted_hot,
        walk_storm,
        group_storm,
        stream,
        scatter,
    ];
    for p in &points {
        let extra = match (&p.naive, p.events_peak) {
            (Some(n), _) => format!(
                " (naive {:.0} c/s, speedup {:.1}x)",
                n.sim_cycles_per_sec, n.speedup
            ),
            (None, Some(events)) => format!(" (events peak {events})"),
            _ => String::new(),
        };
        println!(
            "{:>28}: {:>12} sim cycles in {:>9.3} ms = {:.0} cycles/s{extra}",
            p.name, p.simulated_cycles, p.wallclock_ms, p.sim_cycles_per_sec
        );
    }
    for s in &scaling {
        println!(
            "{:>28}: {} workers, {} points in {:.1} ms = {:.2} points/s ({:.2}x vs 1 worker)",
            "thread_scaling", s.workers, s.points, s.wallclock_ms, s.points_per_sec, s.speedup_vs_1
        );
    }

    let json = to_json(if smoke { "smoke" } else { "full" }, &points, &scaling);
    let errors = validate(&json);
    assert!(errors.is_empty(), "self-validation failed: {errors:?}");
    std::fs::write(&out, json).expect("write BENCH_simspeed.json");
    println!("wrote {out}");

    if !smoke {
        for gated in [
            "timed_queue_deep",
            "fabric_long_window",
            "ptw_walk_storm",
            "pri_group_storm",
            "backing_stream",
            "backing_scatter",
        ] {
            let speedup = points
                .iter()
                .find(|p| p.name == gated)
                .and_then(|p| p.naive.as_ref())
                .expect("gated point carries the naive baseline")
                .speedup;
            assert!(
                speedup >= GATE_SPEEDUP,
                "perf gate: {gated} speedup {speedup:.1}x < {GATE_SPEEDUP}x over linear scan"
            );
            println!(
                "perf gate ok: {gated} {speedup:.1}x >= {GATE_SPEEDUP}x over the \
                 linear-scan baseline"
            );
        }
    }
}
