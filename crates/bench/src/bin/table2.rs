//! Regenerates Table II: total device runtime and %DMA for each kernel at
//! each DRAM latency, for the Baseline / IOMMU / IOMMU+LLC variants.

use sva_bench::{parse_args, with_banner};
use sva_kernels::KernelKind;
use sva_soc::experiments::kernel_runtime;

fn main() {
    let size = parse_args();
    let latencies = size.latencies();
    let result = kernel_runtime::run(&KernelKind::TABLE2, &latencies, size.is_paper())
        .expect("table II sweep failed");
    with_banner(
        "Table II: total runtime in cycles for each kernel at variable memory latency",
        || result.render_table2(&latencies),
    );
}
