//! Shared helpers for the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper.
//! They accept a single optional argument:
//!
//! * `--paper` (default) — run the paper's problem sizes and latency sweep;
//! * `--small` — run reduced problem sizes for a quick functional check.
//!
//! The binaries print plain-text tables whose rows mirror the paper's
//! artefacts; EXPERIMENTS.md records the output of a `--paper` run next to
//! the published numbers.

#![warn(missing_docs)]

use std::time::Instant;

pub mod par;

/// Problem-size selection for an experiment binary.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RunSize {
    /// The paper's sizes and the full 200/600/1000 latency sweep.
    Paper,
    /// Reduced sizes for quick functional runs and CI.
    Small,
}

impl RunSize {
    /// Returns `true` for the paper-sized run.
    pub const fn is_paper(self) -> bool {
        matches!(self, RunSize::Paper)
    }

    /// The DRAM-latency sweep to use.
    pub fn latencies(self) -> Vec<u64> {
        match self {
            RunSize::Paper => vec![200, 600, 1000],
            RunSize::Small => vec![200, 1000],
        }
    }
}

/// Parses the command-line arguments of an experiment binary.
pub fn parse_args() -> RunSize {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--small") {
        RunSize::Small
    } else {
        RunSize::Paper
    }
}

/// Runs `f`, printing its banner and wall-clock duration around its output.
pub fn with_banner<F: FnOnce() -> String>(title: &str, f: F) {
    println!("=== {title} ===");
    let start = Instant::now();
    let body = f();
    println!("{body}");
    println!("(generated in {:.1} s)\n", start.elapsed().as_secs_f64());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_sweeps() {
        assert_eq!(RunSize::Paper.latencies(), vec![200, 600, 1000]);
        assert_eq!(RunSize::Small.latencies(), vec![200, 1000]);
        assert!(RunSize::Paper.is_paper());
        assert!(!RunSize::Small.is_paper());
    }
}
