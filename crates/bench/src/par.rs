//! Minimal thread-pool map for the sweep drivers.
//!
//! The build environment is offline, so `rayon` is unavailable; this module
//! provides the one primitive the sweep drivers need — an order-preserving
//! parallel map over independent work items — on top of
//! `std::thread::scope`. Each simulated platform is self-contained, so
//! fanning combinations out across OS threads is embarrassingly parallel.
//!
//! Work distribution is a single shared `AtomicUsize` cursor over a slot
//! vector: workers `fetch_add` the next index and write the result into
//! their own slot. Compared with the earlier `Mutex<Vec<…>>` job queue this
//! removes both the per-item queue lock and the final sort — under the
//! previous scheme short sweep points serialized on the queue mutex, which
//! flattened the thread-scaling curve the `simspeed` bench measures.
//!
//! The worker count can be pinned with the `SVA_BENCH_THREADS` environment
//! variable (scaling measurements, CI determinism); [`par_map_with`] takes
//! the count explicitly for in-process scaling sweeps.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Worker-thread count for a map over `n` items: the `SVA_BENCH_THREADS`
/// override when set to a positive integer (allowed to exceed the hardware
/// parallelism — oversubscription is a legitimate measurement point),
/// otherwise `available_parallelism`; always clamped to `n` and at least 1.
pub fn worker_count(n: usize) -> usize {
    let configured = std::env::var("SVA_BENCH_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&w| w > 0)
        .unwrap_or_else(|| {
            thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        });
    configured.min(n).max(1)
}

/// Maps `f` over `items` on [`worker_count`] worker threads, preserving
/// input order in the output.
///
/// Workers pull items off a shared atomic cursor, so uneven point costs
/// (e.g. a 4-cluster high-latency sweep point next to a tiny baseline
/// point) balance automatically.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers).
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = worker_count(items.len());
    par_map_with(items, workers, f)
}

/// [`par_map`] with an explicit worker count (clamped to the item count and
/// at least 1). The `simspeed` thread-scaling curve drives this directly so
/// one process can measure every point of the curve.
pub fn par_map_with<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.min(n).max(1);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    // One slot per item: workers claim indexes off the cursor and write
    // results into their own slot — no shared queue lock, no final sort.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= n {
                    break;
                }
                let item = slots[index]
                    .lock()
                    .expect("slot lock")
                    .take()
                    .expect("each slot is claimed exactly once");
                let result = f(item);
                *results[index].lock().expect("result lock") = Some(result);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("workers joined")
                .expect("every slot filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = par_map((0..100).collect::<Vec<i32>>(), |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(par_map(vec![41], |x| x + 1), vec![42]);
    }

    #[test]
    fn explicit_worker_counts_preserve_order() {
        for workers in [1usize, 2, 3, 8, 64] {
            let out = par_map_with((0..57).collect::<Vec<i32>>(), workers, |x| x * 3);
            assert_eq!(out, (0..57).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn worker_count_is_clamped_to_items() {
        // Regardless of the environment, a map over 3 items never asks for
        // more than 3 workers (and never fewer than 1).
        let w = worker_count(3);
        assert!((1..=3).contains(&w));
        assert_eq!(worker_count(1), 1);
    }
}
