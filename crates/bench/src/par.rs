//! Minimal thread-pool map for the sweep drivers.
//!
//! The build environment is offline, so `rayon` is unavailable; this module
//! provides the one primitive the sweep drivers need — an order-preserving
//! parallel map over independent work items — on top of
//! `std::thread::scope`. Each simulated platform is self-contained, so
//! fanning combinations out across OS threads is embarrassingly parallel.

use std::num::NonZeroUsize;
use std::sync::Mutex;
use std::thread;

/// Maps `f` over `items` on up to `available_parallelism` worker threads,
/// preserving input order in the output.
///
/// Workers pull items off a shared queue, so uneven point costs (e.g. a
/// 4-cluster high-latency sweep point next to a tiny baseline point) balance
/// automatically.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers).
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    // LIFO queue of (index, item); results are reordered by index at the end.
    let queue: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = queue.lock().expect("queue lock").pop();
                let Some((index, item)) = job else { break };
                let result = f(item);
                done.lock().expect("result lock").push((index, result));
            });
        }
    });
    let mut results = done.into_inner().expect("workers joined");
    results.sort_by_key(|(index, _)| *index);
    results.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = par_map((0..100).collect::<Vec<i32>>(), |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(par_map(vec![41], |x| x + 1), vec![42]);
    }
}
