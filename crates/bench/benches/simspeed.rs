//! Criterion micro-benchmarks of the event-indexed occupancy-timeline
//! engine: indexed vs linear-scan pushes on a deep bounded queue, the
//! admission query on a standing backlog, watermark compaction, the
//! fabric `admit` grant path (end-indexed placement vs the retained
//! linear-scan `NaiveFabric`), the page-table walker's hot fetch path
//! (indexed walk-table probe vs the retained full-table scan, on a walker
//! carrying thousands of accumulated walk records), and the backing
//! store's hot single-frame typed accessors (direct-map + last-frame memo
//! vs the retained hash-map engine).
//!
//! The `simspeed` binary is the perf *gate* (absolute
//! simulated-cycles-per-second, written to `BENCH_simspeed.json`); these
//! benches are the engine-local view for iterating on `channel.rs` and
//! `fabric.rs` themselves.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sva_common::rng::DeterministicRng;
use sva_common::{
    Cycles, InitiatorId, Iova, MemPortReq, NaiveTimedQueue, PhysAddr, PortTiming, TimedQueue,
    PAGE_SIZE,
};
use sva_iommu::PageTableWalker;
use sva_mem::{Fabric, MemSysConfig, MemorySystem, NaiveFabric};
use sva_vm::{AddressSpace, FrameAllocator};

/// The deep-queue batch the `simspeed` stress point uses, at bench size.
fn batch(pushes: usize) -> Vec<(u64, u64)> {
    let mut rng = DeterministicRng::new(0x5135_BEEF);
    let mut cursors = [0u64; 4];
    (0..pushes)
        .map(|i| {
            let shard = i % 4;
            cursors[shard] += rng.next_below(10);
            (cursors[shard], cursors[shard] + rng.next_below(600))
        })
        .collect()
}

fn bench_push(c: &mut Criterion) {
    let work = batch(2_000);
    let mut group = c.benchmark_group("timed_queue/push_2k_deep64");
    group.bench_function("indexed", |b| {
        b.iter(|| {
            let mut q = TimedQueue::new(64);
            for &(enter, exit) in &work {
                black_box(q.push(enter, exit));
            }
            q.stall_cycles()
        })
    });
    group.bench_function("naive", |b| {
        b.iter(|| {
            let mut q = NaiveTimedQueue::new(64);
            for &(enter, exit) in &work {
                black_box(q.push(enter, exit));
            }
            q.stall_cycles()
        })
    });
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let work = batch(2_000);
    let mut indexed = TimedQueue::new(64);
    let mut naive = NaiveTimedQueue::new(64);
    for &(enter, exit) in &work {
        indexed.push(enter, exit);
        naive.push(enter, exit);
    }
    let horizon = work.iter().map(|&(_, x)| x).max().unwrap_or(0);
    let mut group = c.benchmark_group("timed_queue/admission_on_backlog");
    group.bench_function("indexed", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t = (t + 97) % horizon;
            black_box(indexed.admission_at(t))
        })
    });
    group.bench_function("naive", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t = (t + 97) % horizon;
            black_box(naive.admission_at(t))
        })
    });
    group.finish();
}

fn bench_compaction(c: &mut Criterion) {
    c.bench_function("timed_queue/push_2k_compacted", |b| {
        let mut rng = DeterministicRng::new(0x5135_C0DE);
        b.iter(|| {
            let mut q = TimedQueue::new(64);
            let mut cursor = 0u64;
            for i in 0..2_000u64 {
                if i % 512 == 0 {
                    q.compact_before(cursor);
                }
                cursor += rng.next_below(10);
                black_box(q.push(cursor, cursor + rng.next_below(600)));
            }
            q.event_count()
        })
    });
}

/// The long-window grant batch the `fabric_long_window` simspeed point
/// uses, at bench size: one early long "poison pill" burst, then short
/// monotone grants — the shape that punishes backward history scans.
fn grant_batch(grants: usize) -> Vec<(MemPortReq, PortTiming)> {
    let mut rng = DeterministicRng::new(0xFAB_0BA7);
    let pill = 50_000u64;
    let mut batch = Vec::with_capacity(grants + 1);
    batch.push((
        MemPortReq::read(InitiatorId::dma(0), PhysAddr::new(0x8000_0000), pill * 8)
            .as_burst()
            .at(Cycles::ZERO),
        PortTiming {
            latency: Cycles::new(100),
            occupancy: Cycles::new(pill),
        },
    ));
    let mut cursor = pill;
    for i in 0..grants {
        cursor += 20 + rng.next_below(40);
        let occ = 4 + rng.next_below(12);
        batch.push((
            MemPortReq::read(
                InitiatorId::dma(1 + (i as u32 % 3)),
                PhysAddr::new(0x8000_0000),
                occ * 8,
            )
            .as_burst()
            .at(Cycles::new(cursor)),
            PortTiming {
                latency: Cycles::new(100),
                occupancy: Cycles::new(occ),
            },
        ));
    }
    batch
}

fn bench_fabric_admit(c: &mut Criterion) {
    let work = grant_batch(2_000);
    let mut group = c.benchmark_group("fabric/admit_2k_long_window");
    group.bench_function("indexed", |b| {
        b.iter(|| {
            let mut fabric = Fabric::default();
            for (req, timing) in &work {
                black_box(fabric.admit(req, *timing));
            }
            fabric.grants()
        })
    });
    group.bench_function("naive", |b| {
        b.iter(|| {
            let mut fabric = NaiveFabric::default();
            for (req, timing) in &work {
                black_box(fabric.admit(req, *timing));
            }
            fabric.grants()
        })
    });
    group.finish();
}

/// The hot translation fetch: both walkers are preloaded with a ~5000-walk
/// sharded storm (the `ptw_walk_storm` simspeed shape), whose records the
/// naive table scans on every later probe, then one fresh walk plants live
/// windows on every level of the hot page. The measured walk coalesces on
/// all three levels — a pure probe, no new records, no memory reads — so
/// each iteration is identical and the two engines differ only in how they
/// find the in-flight windows.
fn bench_ptw_fetch_hot(c: &mut Criterion) {
    const PAGES: u64 = 48;
    let storm: Vec<(u64, u64)> = {
        let mut rng = DeterministicRng::new(0x977A_5708);
        let mut cursors = [0u64; 4];
        (0..5_000)
            .map(|i| {
                let shard = i % 4;
                cursors[shard] += rng.next_below(50);
                (rng.next_below(PAGES), cursors[shard])
            })
            .collect()
    };
    let mut group = c.benchmark_group("ptw/fetch_hot");
    for (name, mut walker) in [
        ("indexed", PageTableWalker::with_batching(8)),
        ("naive", PageTableWalker::with_naive_batching(8)),
    ] {
        let mut mem = MemorySystem::new(MemSysConfig {
            dram_latency: Cycles::new(400),
            ..MemSysConfig::default()
        });
        let mut frames = FrameAllocator::linux_pool();
        let mut space = AddressSpace::new(&mut mem, &mut frames).unwrap();
        let base = Iova::from_virt(
            space
                .alloc_buffer(&mut mem, &mut frames, PAGES * PAGE_SIZE)
                .unwrap(),
        );
        let mut horizon = 0u64;
        for &(page, t) in &storm {
            let res = walker
                .walk_at(
                    &mut mem,
                    space.root(),
                    base + page * PAGE_SIZE,
                    false,
                    Cycles::new(t),
                )
                .unwrap();
            horizon = horizon.max(t + res.cycles.raw());
        }
        // Plant live windows past the storm's horizon, then probe inside
        // them: every bench iteration coalesces on all levels.
        walker
            .walk_at(
                &mut mem,
                space.root(),
                base,
                false,
                Cycles::new(horizon + 1),
            )
            .unwrap();
        let probe_t = Cycles::new(horizon + 2);
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    walker
                        .walk_at(&mut mem, space.root(), base, false, probe_t)
                        .unwrap()
                        .cycles,
                )
            })
        });
    }
    group.finish();
}

/// The hot data-plane element access: typed `u64` reads and writes cycling
/// inside one resident frame (the PTE-fetch / page-table-write shape — the
/// memo and the single-frame fast path both stay hot), direct-map store vs
/// the retained hash-map engine.
fn bench_backing_frame_hot(c: &mut Criterion) {
    let mut group = c.benchmark_group("backing/frame_hot");
    let capacity = 64 * PAGE_SIZE;
    let hot = 3 * PAGE_SIZE;
    group.bench_function("indexed", |b| {
        let mut mem = sva_mem::SparseMemory::new(capacity);
        mem.write_u64(hot, 1).unwrap();
        let mut slot = 0u64;
        b.iter(|| {
            slot = (slot + 8) % 512;
            let v = mem.read_u64(hot + slot).unwrap();
            black_box(mem.write_u64(hot + slot, v.wrapping_add(1)).unwrap())
        })
    });
    group.bench_function("naive", |b| {
        let mut mem = sva_mem::NaiveSparseMemory::new(capacity);
        mem.write_u64(hot, 1).unwrap();
        let mut slot = 0u64;
        b.iter(|| {
            slot = (slot + 8) % 512;
            let v = mem.read_u64(hot + slot).unwrap();
            black_box(mem.write_u64(hot + slot, v.wrapping_add(1)).unwrap())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_push,
    bench_queries,
    bench_compaction,
    bench_fabric_admit,
    bench_ptw_fetch_hot,
    bench_backing_frame_hot
);
criterion_main!(benches);
