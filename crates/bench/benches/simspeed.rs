//! Criterion micro-benchmarks of the event-indexed occupancy-timeline
//! engine: indexed vs linear-scan pushes on a deep bounded queue, the
//! admission query on a standing backlog, watermark compaction, and the
//! fabric `admit` grant path (end-indexed placement vs the retained
//! linear-scan `NaiveFabric`).
//!
//! The `simspeed` binary is the perf *gate* (absolute
//! simulated-cycles-per-second, written to `BENCH_simspeed.json`); these
//! benches are the engine-local view for iterating on `channel.rs` and
//! `fabric.rs` themselves.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sva_common::rng::DeterministicRng;
use sva_common::{
    Cycles, InitiatorId, MemPortReq, NaiveTimedQueue, PhysAddr, PortTiming, TimedQueue,
};
use sva_mem::{Fabric, NaiveFabric};

/// The deep-queue batch the `simspeed` stress point uses, at bench size.
fn batch(pushes: usize) -> Vec<(u64, u64)> {
    let mut rng = DeterministicRng::new(0x5135_BEEF);
    let mut cursors = [0u64; 4];
    (0..pushes)
        .map(|i| {
            let shard = i % 4;
            cursors[shard] += rng.next_below(10);
            (cursors[shard], cursors[shard] + rng.next_below(600))
        })
        .collect()
}

fn bench_push(c: &mut Criterion) {
    let work = batch(2_000);
    let mut group = c.benchmark_group("timed_queue/push_2k_deep64");
    group.bench_function("indexed", |b| {
        b.iter(|| {
            let mut q = TimedQueue::new(64);
            for &(enter, exit) in &work {
                black_box(q.push(enter, exit));
            }
            q.stall_cycles()
        })
    });
    group.bench_function("naive", |b| {
        b.iter(|| {
            let mut q = NaiveTimedQueue::new(64);
            for &(enter, exit) in &work {
                black_box(q.push(enter, exit));
            }
            q.stall_cycles()
        })
    });
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let work = batch(2_000);
    let mut indexed = TimedQueue::new(64);
    let mut naive = NaiveTimedQueue::new(64);
    for &(enter, exit) in &work {
        indexed.push(enter, exit);
        naive.push(enter, exit);
    }
    let horizon = work.iter().map(|&(_, x)| x).max().unwrap_or(0);
    let mut group = c.benchmark_group("timed_queue/admission_on_backlog");
    group.bench_function("indexed", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t = (t + 97) % horizon;
            black_box(indexed.admission_at(t))
        })
    });
    group.bench_function("naive", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t = (t + 97) % horizon;
            black_box(naive.admission_at(t))
        })
    });
    group.finish();
}

fn bench_compaction(c: &mut Criterion) {
    c.bench_function("timed_queue/push_2k_compacted", |b| {
        let mut rng = DeterministicRng::new(0x5135_C0DE);
        b.iter(|| {
            let mut q = TimedQueue::new(64);
            let mut cursor = 0u64;
            for i in 0..2_000u64 {
                if i % 512 == 0 {
                    q.compact_before(cursor);
                }
                cursor += rng.next_below(10);
                black_box(q.push(cursor, cursor + rng.next_below(600)));
            }
            q.event_count()
        })
    });
}

/// The long-window grant batch the `fabric_long_window` simspeed point
/// uses, at bench size: one early long "poison pill" burst, then short
/// monotone grants — the shape that punishes backward history scans.
fn grant_batch(grants: usize) -> Vec<(MemPortReq, PortTiming)> {
    let mut rng = DeterministicRng::new(0xFAB_0BA7);
    let pill = 50_000u64;
    let mut batch = Vec::with_capacity(grants + 1);
    batch.push((
        MemPortReq::read(InitiatorId::dma(0), PhysAddr::new(0x8000_0000), pill * 8)
            .as_burst()
            .at(Cycles::ZERO),
        PortTiming {
            latency: Cycles::new(100),
            occupancy: Cycles::new(pill),
        },
    ));
    let mut cursor = pill;
    for i in 0..grants {
        cursor += 20 + rng.next_below(40);
        let occ = 4 + rng.next_below(12);
        batch.push((
            MemPortReq::read(
                InitiatorId::dma(1 + (i as u32 % 3)),
                PhysAddr::new(0x8000_0000),
                occ * 8,
            )
            .as_burst()
            .at(Cycles::new(cursor)),
            PortTiming {
                latency: Cycles::new(100),
                occupancy: Cycles::new(occ),
            },
        ));
    }
    batch
}

fn bench_fabric_admit(c: &mut Criterion) {
    let work = grant_batch(2_000);
    let mut group = c.benchmark_group("fabric/admit_2k_long_window");
    group.bench_function("indexed", |b| {
        b.iter(|| {
            let mut fabric = Fabric::default();
            for (req, timing) in &work {
                black_box(fabric.admit(req, *timing));
            }
            fabric.grants()
        })
    });
    group.bench_function("naive", |b| {
        b.iter(|| {
            let mut fabric = NaiveFabric::default();
            for (req, timing) in &work {
                black_box(fabric.admit(req, *timing));
            }
            fabric.grants()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_push,
    bench_queries,
    bench_compaction,
    bench_fabric_admit
);
criterion_main!(benches);
