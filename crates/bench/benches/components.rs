//! Criterion micro-benchmarks of the individual hardware models: IOMMU
//! translation, DMA bursts, page-table construction and LLC accesses.
//!
//! These quantify the simulator's own hot paths so regressions in the models
//! (which every experiment depends on) are caught early.

use criterion::{criterion_group, criterion_main, Criterion};

use sva_cluster::{DmaConfig, DmaEngine, DmaRequest, Tcdm};
use sva_common::{Cycles, Iova, PhysAddr, PAGE_SIZE};
use sva_iommu::{Iommu, IommuConfig};
use sva_mem::{MemSysConfig, MemorySystem};
use sva_vm::{AddressSpace, FrameAllocator, PteFlags};

fn translation_setup() -> (MemorySystem, Iommu, Iova) {
    let mut mem = MemorySystem::default();
    let mut frames = FrameAllocator::linux_pool();
    let mut space = AddressSpace::new(&mut mem, &mut frames).unwrap();
    let va = space
        .alloc_buffer(&mut mem, &mut frames, 64 * PAGE_SIZE)
        .unwrap();
    let mut iommu = Iommu::new(IommuConfig::default());
    iommu
        .attach_device(&mut mem, &mut frames, 1, space.pscid(), space.root())
        .unwrap();
    (mem, iommu, Iova::from_virt(va))
}

fn bench_iommu_translate(c: &mut Criterion) {
    let mut group = c.benchmark_group("iommu/translate");
    group.bench_function("iotlb_hit", |b| {
        let (mut mem, mut iommu, iova) = translation_setup();
        iommu.translate(&mut mem, 1, iova, false).unwrap();
        b.iter(|| iommu.translate(&mut mem, 1, iova, false).unwrap())
    });
    group.bench_function("iotlb_miss_walk", |b| {
        let (mut mem, mut iommu, iova) = translation_setup();
        let mut page = 0u64;
        b.iter(|| {
            // Sweep pages so the 4-entry IOTLB keeps missing.
            page = (page + 1) % 64;
            iommu
                .translate(&mut mem, 1, iova + page * PAGE_SIZE, false)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_dma_burst(c: &mut Criterion) {
    c.bench_function("dma/64KiB_bypass_transfer", |b| {
        let mut mem = MemorySystem::new(MemSysConfig::default());
        let mut iommu = Iommu::new(IommuConfig::disabled());
        let mut tcdm = Tcdm::default();
        let mut dma = DmaEngine::new(DmaConfig::default());
        let addr = Iova::new(
            sva_axi::addrmap::DRAM_BASE + sva_axi::addrmap::LLC_BYPASS_OFFSET + 0x10_0000,
        );
        b.iter(|| {
            dma.execute(
                &mut mem,
                &mut iommu,
                &mut tcdm,
                &[DmaRequest::input(addr, 0, 64 * 1024)],
                Cycles::ZERO,
            )
            .unwrap()
        })
    });
}

fn bench_page_table_map(c: &mut Criterion) {
    c.bench_function("vm/map_64_pages", |b| {
        b.iter(|| {
            let mut mem = MemorySystem::default();
            let mut frames = FrameAllocator::linux_pool();
            let pt = sva_vm::PageTable::create(&mut frames).unwrap();
            for i in 0..64u64 {
                let pa = frames.alloc_frame().unwrap();
                pt.map_page(
                    &mut mem,
                    &mut frames,
                    sva_common::VirtAddr::new(0x4000_0000 + i * PAGE_SIZE),
                    pa,
                    PteFlags::user_rw(),
                )
                .unwrap();
            }
        })
    });
}

fn bench_llc_host_access(c: &mut Criterion) {
    c.bench_function("mem/host_read_llc_hit", |b| {
        let mut mem = MemorySystem::default();
        let addr = PhysAddr::new(sva_axi::addrmap::DRAM_BASE + 0x8000);
        let mut buf = [0u8; 8];
        mem.host_read(addr, &mut buf).unwrap();
        b.iter(|| mem.host_read(addr, &mut buf).unwrap())
    });
}

criterion_group!(
    name = components;
    config = Criterion::default().sample_size(20);
    targets =
        bench_iommu_translate,
        bench_dma_burst,
        bench_page_table_map,
        bench_llc_host_access
);
criterion_main!(components);
