//! Criterion benchmarks wrapping the paper's experiments at reduced problem
//! sizes.
//!
//! These keep the experiment entry points exercised under `cargo bench` and
//! give wall-clock numbers for the simulator itself; the paper-style cycle
//! tables are produced by the binaries in `src/bin/` (see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};

use sva_kernels::KernelKind;
use sva_soc::config::{PlatformConfig, SocVariant};
use sva_soc::experiments::{copy_vs_map, kernel_runtime, offload_breakdown, ptw_time, serving};
use sva_soc::offload::OffloadRunner;
use sva_soc::platform::Platform;

fn bench_table2_sweep(c: &mut Criterion) {
    c.bench_function("table2/gemm64_two_latencies_three_variants", |b| {
        b.iter(|| {
            kernel_runtime::run(&[KernelKind::Gemm], &[200, 1000], false).expect("table II sweep")
        })
    });
}

fn bench_fig2_breakdown(c: &mut Criterion) {
    c.bench_function("fig2/axpy8192_offload_breakdown", |b| {
        b.iter(|| offload_breakdown::run(8_192, 200).expect("figure 2"))
    });
}

fn bench_fig3_copy_vs_map(c: &mut Criterion) {
    c.bench_function("fig3/copy_vs_map_16pages", |b| {
        b.iter(|| copy_vs_map::run(&[16], &[200, 1000]).expect("figure 3"))
    });
}

fn bench_fig5_ptw(c: &mut Criterion) {
    c.bench_function("fig5/ptw_time_axpy8192", |b| {
        b.iter(|| ptw_time::run(8_192, &[600]).expect("figure 5"))
    });
}

fn bench_device_only_per_variant(c: &mut Criterion) {
    let mut group = c.benchmark_group("device_only/gesummv128");
    for variant in SocVariant::ALL {
        group.bench_function(variant.label(), |b| {
            b.iter(|| {
                let workload = KernelKind::Gesummv.small_workload();
                let mut platform =
                    Platform::new(PlatformConfig::variant(variant, 600)).expect("platform");
                OffloadRunner::new(1)
                    .run_device_only(&mut platform, workload.as_ref())
                    .expect("device run")
            })
        });
    }
    group.finish();
}

fn bench_serving_point(c: &mut Criterion) {
    let services = serving::calibrate().expect("service calibration");
    let config = serving::grid(false)
        .into_iter()
        .find(|p| p.utilization > 1.0)
        .expect("saturated grid point");
    c.bench_function("serving/poisson_saturated_point", |b| {
        b.iter(|| serving::run_point(&config, &services))
    });
}

criterion_group!(
    name = experiments;
    config = Criterion::default().sample_size(10);
    targets =
        bench_table2_sweep,
        bench_fig2_breakdown,
        bench_fig3_copy_vs_map,
        bench_fig5_ptw,
        bench_device_only_per_variant,
        bench_serving_point
);
criterion_main!(experiments);
