//! Sv39 page-table entries.
//!
//! The RISC-V privileged specification defines the PTE layout shared by the
//! host MMU and the IOMMU (the IOMMU specification simply reuses Sv39/Sv48
//! first-stage tables). Only the fields the simulation needs are modelled:
//! the valid/read/write/execute/user/accessed/dirty flags and the physical
//! page number.

use core::fmt;

use serde::{Deserialize, Serialize};
use sva_common::{PhysAddr, PAGE_SHIFT};

/// Permission and status flags of a PTE (low 8 bits of the entry).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PteFlags(u8);

impl PteFlags {
    /// Valid.
    pub const V: PteFlags = PteFlags(1 << 0);
    /// Readable.
    pub const R: PteFlags = PteFlags(1 << 1);
    /// Writable.
    pub const W: PteFlags = PteFlags(1 << 2);
    /// Executable.
    pub const X: PteFlags = PteFlags(1 << 3);
    /// User-accessible (required for IOMMU first-stage user translations).
    pub const U: PteFlags = PteFlags(1 << 4);
    /// Global.
    pub const G: PteFlags = PteFlags(1 << 5);
    /// Accessed.
    pub const A: PteFlags = PteFlags(1 << 6);
    /// Dirty.
    pub const D: PteFlags = PteFlags(1 << 7);

    /// Flags of a user read-write data page, pre-accessed/dirtied the way the
    /// kernel driver sets them for DMA-mapped pages.
    pub const fn user_rw() -> PteFlags {
        PteFlags(Self::V.0 | Self::R.0 | Self::W.0 | Self::U.0 | Self::A.0 | Self::D.0)
    }

    /// Flags of a user read-only data page.
    pub const fn user_ro() -> PteFlags {
        PteFlags(Self::V.0 | Self::R.0 | Self::U.0 | Self::A.0)
    }

    /// Empty flag set.
    pub const fn empty() -> PteFlags {
        PteFlags(0)
    }

    /// Raw bits.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Creates flags from raw bits.
    pub const fn from_bits(bits: u8) -> PteFlags {
        PteFlags(bits)
    }

    /// Returns `true` if every flag in `other` is also set in `self`.
    pub const fn contains(self, other: PteFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    pub const fn union(self, other: PteFlags) -> PteFlags {
        PteFlags(self.0 | other.0)
    }
}

impl core::ops::BitOr for PteFlags {
    type Output = PteFlags;
    fn bitor(self, rhs: PteFlags) -> PteFlags {
        self.union(rhs)
    }
}

impl fmt::Display for PteFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (Self::D, 'D'),
            (Self::A, 'A'),
            (Self::G, 'G'),
            (Self::U, 'U'),
            (Self::X, 'X'),
            (Self::W, 'W'),
            (Self::R, 'R'),
            (Self::V, 'V'),
        ];
        for (flag, c) in names {
            write!(f, "{}", if self.contains(flag) { c } else { '-' })?;
        }
        Ok(())
    }
}

/// A raw Sv39 page-table entry.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pte(u64);

impl Pte {
    /// An all-zero (invalid) entry.
    pub const INVALID: Pte = Pte(0);

    /// Creates a PTE from its raw 64-bit encoding.
    pub const fn from_raw(raw: u64) -> Pte {
        Pte(raw)
    }

    /// The raw 64-bit encoding.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Creates a leaf entry pointing at the physical page containing `pa`.
    pub const fn leaf(pa: PhysAddr, flags: PteFlags) -> Pte {
        Pte(((pa.raw() >> PAGE_SHIFT) << 10) | flags.bits() as u64)
    }

    /// Creates a non-leaf (pointer) entry referring to the next-level table
    /// page containing `pa`. Pointer entries have only the V bit set.
    pub const fn table(pa: PhysAddr) -> Pte {
        Pte(((pa.raw() >> PAGE_SHIFT) << 10) | PteFlags::V.bits() as u64)
    }

    /// The flag bits of the entry.
    pub const fn flags(self) -> PteFlags {
        PteFlags::from_bits((self.0 & 0xFF) as u8)
    }

    /// Returns `true` if the valid bit is set.
    pub const fn is_valid(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns `true` for a valid leaf entry (any of R/W/X set).
    pub const fn is_leaf(self) -> bool {
        self.is_valid() && (self.0 & 0b1110) != 0
    }

    /// Returns `true` for a valid pointer to a next-level table.
    pub const fn is_table(self) -> bool {
        self.is_valid() && !self.is_leaf()
    }

    /// Physical page number stored in the entry.
    pub const fn ppn(self) -> u64 {
        (self.0 >> 10) & ((1 << 44) - 1)
    }

    /// Physical address of the page (or next-level table) the entry points
    /// to.
    pub const fn phys_addr(self) -> PhysAddr {
        PhysAddr::new(self.ppn() << PAGE_SHIFT)
    }

    /// Returns `true` if the entry permits the given access.
    pub const fn permits(self, is_write: bool) -> bool {
        if !self.is_leaf() {
            return false;
        }
        if is_write {
            self.flags().contains(PteFlags::W)
        } else {
            self.flags().contains(PteFlags::R)
        }
    }
}

impl fmt::Display for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.is_valid() {
            write!(f, "PTE(invalid)")
        } else if self.is_leaf() {
            write!(f, "PTE(leaf -> {} [{}])", self.phys_addr(), self.flags())
        } else {
            write!(f, "PTE(table -> {})", self.phys_addr())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let pa = PhysAddr::new(0x8123_4000);
        let pte = Pte::leaf(pa, PteFlags::user_rw());
        assert!(pte.is_valid());
        assert!(pte.is_leaf());
        assert!(!pte.is_table());
        assert_eq!(pte.phys_addr(), pa);
        assert!(pte.permits(true));
        assert!(pte.permits(false));
    }

    #[test]
    fn table_pointer_is_not_leaf() {
        let pte = Pte::table(PhysAddr::new(0x8000_1000));
        assert!(pte.is_valid());
        assert!(!pte.is_leaf());
        assert!(pte.is_table());
        assert!(!pte.permits(false));
    }

    #[test]
    fn invalid_entry() {
        assert!(!Pte::INVALID.is_valid());
        assert!(!Pte::INVALID.is_leaf());
        assert!(!Pte::INVALID.is_table());
        assert_eq!(Pte::from_raw(0).raw(), 0);
    }

    #[test]
    fn read_only_leaf_denies_writes() {
        let pte = Pte::leaf(PhysAddr::new(0x9000_0000), PteFlags::user_ro());
        assert!(pte.permits(false));
        assert!(!pte.permits(true));
    }

    #[test]
    fn page_offset_bits_do_not_leak_into_ppn() {
        let pte = Pte::leaf(PhysAddr::new(0x8123_4FFF), PteFlags::user_rw());
        // The PPN only keeps the page-aligned part.
        assert_eq!(pte.phys_addr(), PhysAddr::new(0x8123_4000));
    }

    #[test]
    fn flags_display_and_ops() {
        let f = PteFlags::V | PteFlags::R | PteFlags::W;
        assert!(f.contains(PteFlags::V));
        assert!(!f.contains(PteFlags::X));
        assert_eq!(format!("{}", f), "-----WRV");
        assert_eq!(format!("{}", PteFlags::user_rw()), "DA-U-WRV");
    }
}
