//! Physical frame allocation.
//!
//! The simulated Linux kernel needs physical 4 KiB frames for three purposes:
//! user pages backing `malloc`ed buffers, page-table pages for the process /
//! IOMMU page tables, and the physically contiguous buffers in the reserved
//! DRAM area used by the copy-based offload flow. [`FrameAllocator`] is a
//! simple bump allocator over a physical range; separate allocators are
//! instantiated for the Linux-managed half of DRAM and for the reserved
//! contiguous area.

use serde::{Deserialize, Serialize};
use sva_axi::addrmap::{DRAM_BASE, DRAM_SIZE};
use sva_common::addr::PhysRange;
use sva_common::{Error, PhysAddr, Result, MIB, PAGE_SIZE};

/// A bump allocator handing out 4 KiB physical frames from a fixed range.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameAllocator {
    range: PhysRange,
    next: PhysAddr,
    allocated_frames: u64,
}

impl FrameAllocator {
    /// Creates an allocator over `[base, base + len)`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not page-aligned or `len` is not a multiple of the
    /// page size.
    pub fn new(base: PhysAddr, len: u64) -> Self {
        assert!(
            base.is_aligned(PAGE_SIZE),
            "frame pool base must be page-aligned"
        );
        assert!(
            len % PAGE_SIZE == 0,
            "frame pool length must be page-aligned"
        );
        Self {
            range: PhysRange::from_base_len(base, len),
            next: base,
            allocated_frames: 0,
        }
    }

    /// The allocator Linux uses for user pages and page tables in the paper's
    /// memory layout: the lower (Linux-managed) half of DRAM, minus the first
    /// 64 MiB which hold the kernel image and boot memory.
    pub fn linux_pool() -> Self {
        let base = PhysAddr::new(DRAM_BASE + 64 * MIB);
        Self::new(base, DRAM_SIZE / 2 - 64 * MIB)
    }

    /// The allocator for physically contiguous DMA buffers in the reserved
    /// upper half of DRAM (used by the copy-based offload flow).
    pub fn reserved_pool() -> Self {
        let base = PhysAddr::new(DRAM_BASE + DRAM_SIZE / 2);
        Self::new(base, DRAM_SIZE / 2)
    }

    /// The range this allocator manages.
    pub const fn range(&self) -> PhysRange {
        self.range
    }

    /// Number of frames handed out so far.
    pub const fn allocated_frames(&self) -> u64 {
        self.allocated_frames
    }

    /// Bytes still available.
    pub fn remaining_bytes(&self) -> u64 {
        self.range.end - self.next
    }

    /// Allocates one 4 KiB frame.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfMemory`] when the pool is exhausted.
    pub fn alloc_frame(&mut self) -> Result<PhysAddr> {
        self.alloc_contiguous(1)
    }

    /// Allocates `frames` physically contiguous 4 KiB frames and returns the
    /// base address of the run.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfMemory`] when the pool cannot satisfy the
    /// request.
    pub fn alloc_contiguous(&mut self, frames: u64) -> Result<PhysAddr> {
        let bytes = frames * PAGE_SIZE;
        if self.remaining_bytes() < bytes {
            return Err(Error::OutOfMemory {
                what: "physical frame pool",
            });
        }
        let base = self.next;
        self.next += bytes;
        self.allocated_frames += frames;
        Ok(base)
    }

    /// Allocates enough contiguous frames to hold `bytes` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfMemory`] when the pool cannot satisfy the
    /// request.
    pub fn alloc_bytes(&mut self, bytes: u64) -> Result<PhysAddr> {
        self.alloc_contiguous(bytes.div_ceil(PAGE_SIZE))
    }

    /// Releases every allocation, returning the pool to its initial state.
    /// Individual frees are not supported (the experiments build a fresh
    /// platform per run).
    pub fn reset(&mut self) {
        self.next = self.range.start;
        self.allocated_frames = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_page_aligned_and_disjoint() {
        let mut alloc = FrameAllocator::new(PhysAddr::new(0x8000_0000), 64 * PAGE_SIZE);
        let a = alloc.alloc_frame().unwrap();
        let b = alloc.alloc_frame().unwrap();
        assert!(a.is_aligned(PAGE_SIZE));
        assert!(b.is_aligned(PAGE_SIZE));
        assert_eq!(b - a, PAGE_SIZE);
        assert_eq!(alloc.allocated_frames(), 2);
    }

    #[test]
    fn contiguous_allocation_spans_requested_size() {
        let mut alloc = FrameAllocator::new(PhysAddr::new(0x8000_0000), 64 * PAGE_SIZE);
        let base = alloc.alloc_contiguous(16).unwrap();
        let after = alloc.alloc_frame().unwrap();
        assert_eq!(after - base, 16 * PAGE_SIZE);
    }

    #[test]
    fn exhaustion_is_reported() {
        let mut alloc = FrameAllocator::new(PhysAddr::new(0x8000_0000), 4 * PAGE_SIZE);
        assert!(alloc.alloc_contiguous(5).is_err());
        alloc.alloc_contiguous(4).unwrap();
        assert!(alloc.alloc_frame().is_err());
        alloc.reset();
        assert!(alloc.alloc_frame().is_ok());
    }

    #[test]
    fn alloc_bytes_rounds_up_to_pages() {
        let mut alloc = FrameAllocator::new(PhysAddr::new(0x8000_0000), 64 * PAGE_SIZE);
        let a = alloc.alloc_bytes(1).unwrap();
        let b = alloc.alloc_bytes(PAGE_SIZE + 1).unwrap();
        assert_eq!(b - a, PAGE_SIZE);
        let c = alloc.alloc_frame().unwrap();
        assert_eq!(c - b, 2 * PAGE_SIZE);
    }

    #[test]
    fn standard_pools_do_not_overlap() {
        let linux = FrameAllocator::linux_pool();
        let reserved = FrameAllocator::reserved_pool();
        assert!(!linux.range().overlaps(&reserved.range()));
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn unaligned_base_rejected() {
        let _ = FrameAllocator::new(PhysAddr::new(0x8000_0010), PAGE_SIZE);
    }
}
