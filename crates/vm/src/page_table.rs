//! Sv39 three-level page tables built in simulated physical memory.
//!
//! Both the host MMU and the RISC-V IOMMU consume this format. The tables
//! live in the simulated DRAM (written through [`sva_mem::MemorySystem`]'s
//! functional interface by the driver model), which is what lets the IOMMU's
//! page-table walker later *time* its three dependent reads against the same
//! memory hierarchy the paper measures.

use serde::{Deserialize, Serialize};
use sva_common::{Error, PhysAddr, Result, VirtAddr, PAGE_SIZE};
use sva_mem::MemorySystem;

use crate::frame::FrameAllocator;
use crate::pte::{Pte, PteFlags};

/// Number of levels of an Sv39 table (1 GiB, 2 MiB, 4 KiB).
pub const PT_LEVELS: usize = 3;

/// Number of entries per table page (512 × 8 B = 4 KiB).
pub const ENTRIES_PER_TABLE: u64 = 512;

/// Returns the virtual page number field of `va` for a given level
/// (level 0 is the root / most significant field).
pub fn vpn(va: VirtAddr, level: usize) -> u64 {
    debug_assert!(level < PT_LEVELS);
    let shift = 12 + 9 * (PT_LEVELS - 1 - level);
    (va.raw() >> shift) & (ENTRIES_PER_TABLE - 1)
}

/// Physical address of the PTE consulted at `level` when walking `va` in a
/// table page at `table_base`. This is the address the IOMMU's PTW reads.
///
/// Because `table_base` is a page-aligned frame and the index offset is a
/// multiple of 8 below `PAGE_SIZE`, every PTE address is 8-byte aligned and
/// the 8-byte access never straddles a frame boundary — all PTE fetches and
/// stores (here and in the IOMMU's PTW) take the backing store's typed
/// single-frame fast path. Pinned by `pte_accesses_never_straddle_a_frame`.
pub fn pte_address(table_base: PhysAddr, va: VirtAddr, level: usize) -> PhysAddr {
    table_base + vpn(va, level) * 8
}

/// Accounting of a mapping operation, used by the driver cost model: each
/// table allocation and each PTE store is an access the CVA6 performs through
/// its cache hierarchy.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MapStats {
    /// Number of page-table pages that had to be allocated.
    pub tables_allocated: u64,
    /// Number of PTE stores performed.
    pub pte_writes: u64,
    /// Number of PTE loads performed while walking existing levels.
    pub pte_reads: u64,
}

impl MapStats {
    /// Merges the accounting of another operation into this one.
    pub fn merge(&mut self, other: MapStats) {
        self.tables_allocated += other.tables_allocated;
        self.pte_writes += other.pte_writes;
        self.pte_reads += other.pte_reads;
    }
}

/// The PTE addresses and values touched by a full table walk of one address.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalkPath {
    /// `(pte_address, pte_value)` for each level visited, root first.
    pub entries: Vec<(PhysAddr, Pte)>,
}

impl WalkPath {
    /// The leaf entry, if the walk reached one.
    pub fn leaf(&self) -> Option<Pte> {
        self.entries.last().map(|(_, p)| *p).filter(|p| p.is_leaf())
    }

    /// Number of memory reads the walk performed.
    pub fn reads(&self) -> usize {
        self.entries.len()
    }
}

/// An Sv39 page table rooted at a physical page.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageTable {
    root: PhysAddr,
}

impl PageTable {
    /// Wraps an existing (already zeroed) root table page.
    pub const fn from_root(root: PhysAddr) -> Self {
        Self { root }
    }

    /// Allocates a fresh root table page from `frames`.
    ///
    /// Freshly allocated frames read as zero in the simulated memory, so no
    /// explicit clearing is needed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfMemory`] if the frame pool is exhausted.
    pub fn create(frames: &mut FrameAllocator) -> Result<Self> {
        Ok(Self {
            root: frames.alloc_frame()?,
        })
    }

    /// Physical address of the root table page (what `satp`/the IOMMU device
    /// context point at).
    pub const fn root(&self) -> PhysAddr {
        self.root
    }

    /// Maps the 4 KiB page containing `va` to the physical page containing
    /// `pa`, allocating intermediate table pages as needed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfMemory`] if a table page cannot be allocated, or
    /// [`Error::InvalidConfig`] if the address is already mapped with a
    /// conflicting leaf.
    pub fn map_page(
        &self,
        mem: &mut MemorySystem,
        frames: &mut FrameAllocator,
        va: VirtAddr,
        pa: PhysAddr,
        flags: PteFlags,
    ) -> Result<MapStats> {
        let mut stats = MapStats::default();
        let mut table = self.root;
        for level in 0..PT_LEVELS - 1 {
            let pte_addr = pte_address(table, va, level);
            let pte = Pte::from_raw(mem.read_u64_phys(pte_addr)?);
            stats.pte_reads += 1;
            if pte.is_leaf() {
                return Err(Error::InvalidConfig {
                    reason: format!("virtual address {va} already mapped by a superpage"),
                });
            }
            table = if pte.is_table() {
                pte.phys_addr()
            } else {
                let new_table = frames.alloc_frame()?;
                mem.write_u64_phys(pte_addr, Pte::table(new_table).raw())?;
                stats.tables_allocated += 1;
                stats.pte_writes += 1;
                new_table
            };
        }
        let leaf_addr = pte_address(table, va, PT_LEVELS - 1);
        mem.write_u64_phys(leaf_addr, Pte::leaf(pa, flags).raw())?;
        stats.pte_writes += 1;
        Ok(stats)
    }

    /// Maps `len` bytes starting at `va` to the physically contiguous range
    /// starting at `pa`. Both addresses must be page-aligned.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] on misaligned inputs, plus any error
    /// from [`PageTable::map_page`].
    pub fn map_range(
        &self,
        mem: &mut MemorySystem,
        frames: &mut FrameAllocator,
        va: VirtAddr,
        pa: PhysAddr,
        len: u64,
        flags: PteFlags,
    ) -> Result<MapStats> {
        if !va.is_aligned(PAGE_SIZE) || !pa.is_aligned(PAGE_SIZE) {
            return Err(Error::InvalidConfig {
                reason: format!("map_range requires page-aligned addresses (va={va}, pa={pa})"),
            });
        }
        let mut stats = MapStats::default();
        let pages = len.div_ceil(PAGE_SIZE);
        for i in 0..pages {
            let s = self.map_page(mem, frames, va + i * PAGE_SIZE, pa + i * PAGE_SIZE, flags)?;
            stats.merge(s);
        }
        Ok(stats)
    }

    /// Removes the leaf mapping of the page containing `va`.
    ///
    /// Intermediate tables are left in place, as the Linux driver does for
    /// short-lived DMA mappings.
    ///
    /// # Errors
    ///
    /// Returns [`Error::HostPageFault`] if the page was not mapped.
    pub fn unmap_page(&self, mem: &mut MemorySystem, va: VirtAddr) -> Result<()> {
        let path = self.walk(mem, va)?;
        if path.leaf().is_none() {
            return Err(Error::HostPageFault { addr: va });
        }
        let (leaf_addr, _) = *path
            .entries
            .last()
            .expect("walk returned at least one entry");
        mem.write_u64_phys(leaf_addr, Pte::INVALID.raw())?;
        Ok(())
    }

    /// Performs a full software walk of `va`, returning every PTE address and
    /// value visited. The walk stops early at an invalid entry.
    ///
    /// # Errors
    ///
    /// Returns a decode error if a table page address falls outside memory
    /// (corrupted table).
    pub fn walk(&self, mem: &MemorySystem, va: VirtAddr) -> Result<WalkPath> {
        let mut entries = Vec::with_capacity(PT_LEVELS);
        let mut table = self.root;
        for level in 0..PT_LEVELS {
            let pte_addr = pte_address(table, va, level);
            let pte = Pte::from_raw(mem.read_u64_phys(pte_addr)?);
            entries.push((pte_addr, pte));
            if !pte.is_valid() || pte.is_leaf() {
                break;
            }
            table = pte.phys_addr();
        }
        Ok(WalkPath { entries })
    }

    /// Translates a virtual address to a physical address.
    ///
    /// # Errors
    ///
    /// Returns [`Error::HostPageFault`] if the address is unmapped.
    pub fn translate(&self, mem: &MemorySystem, va: VirtAddr) -> Result<PhysAddr> {
        let path = self.walk(mem, va)?;
        let leaf = path.leaf().ok_or(Error::HostPageFault { addr: va })?;
        Ok(leaf.phys_addr() + va.page_offset())
    }

    /// Returns `true` if the page containing `va` has a valid leaf mapping.
    pub fn is_mapped(&self, mem: &MemorySystem, va: VirtAddr) -> bool {
        self.walk(mem, va)
            .map(|p| p.leaf().is_some())
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MemorySystem, FrameAllocator, PageTable) {
        let mem = MemorySystem::default();
        let mut frames = FrameAllocator::linux_pool();
        let pt = PageTable::create(&mut frames).unwrap();
        (mem, frames, pt)
    }

    #[test]
    fn vpn_extraction() {
        let va = VirtAddr::new(0x12_3456_7890);
        // Sv39: vpn2 = bits 38:30, vpn1 = 29:21, vpn0 = 20:12.
        assert_eq!(vpn(va, 0), (va.raw() >> 30) & 0x1FF);
        assert_eq!(vpn(va, 1), (va.raw() >> 21) & 0x1FF);
        assert_eq!(vpn(va, 2), (va.raw() >> 12) & 0x1FF);
    }

    #[test]
    fn map_and_translate_roundtrip() {
        let (mut mem, mut frames, pt) = setup();
        let va = VirtAddr::new(0x4000_1000);
        let pa = frames.alloc_frame().unwrap();
        let stats = pt
            .map_page(&mut mem, &mut frames, va, pa, PteFlags::user_rw())
            .unwrap();
        // First mapping allocates the two intermediate levels.
        assert_eq!(stats.tables_allocated, 2);
        assert_eq!(stats.pte_writes, 3);
        assert_eq!(pt.translate(&mem, va).unwrap(), pa);
        assert_eq!(pt.translate(&mem, va + 0x123).unwrap(), pa + 0x123);
        assert!(pt.is_mapped(&mem, va));
        assert!(!pt.is_mapped(&mem, va + PAGE_SIZE));
    }

    #[test]
    fn second_mapping_in_same_region_reuses_tables() {
        let (mut mem, mut frames, pt) = setup();
        let va = VirtAddr::new(0x4000_0000);
        let pa1 = frames.alloc_frame().unwrap();
        let pa2 = frames.alloc_frame().unwrap();
        pt.map_page(&mut mem, &mut frames, va, pa1, PteFlags::user_rw())
            .unwrap();
        let stats = pt
            .map_page(
                &mut mem,
                &mut frames,
                va + PAGE_SIZE,
                pa2,
                PteFlags::user_rw(),
            )
            .unwrap();
        assert_eq!(stats.tables_allocated, 0);
        assert_eq!(stats.pte_writes, 1);
    }

    #[test]
    fn map_range_covers_every_page() {
        let (mut mem, mut frames, pt) = setup();
        let va = VirtAddr::new(0x5000_0000);
        let pa = frames.alloc_contiguous(16).unwrap();
        pt.map_range(
            &mut mem,
            &mut frames,
            va,
            pa,
            16 * PAGE_SIZE,
            PteFlags::user_rw(),
        )
        .unwrap();
        for i in 0..16u64 {
            assert_eq!(
                pt.translate(&mem, va + i * PAGE_SIZE).unwrap(),
                pa + i * PAGE_SIZE
            );
        }
        assert!(!pt.is_mapped(&mem, va + 16 * PAGE_SIZE));
    }

    #[test]
    fn map_range_rejects_misaligned_input() {
        let (mut mem, mut frames, pt) = setup();
        let err = pt.map_range(
            &mut mem,
            &mut frames,
            VirtAddr::new(0x5000_0010),
            PhysAddr::new(0x8000_0000),
            PAGE_SIZE,
            PteFlags::user_rw(),
        );
        assert!(matches!(err, Err(Error::InvalidConfig { .. })));
    }

    #[test]
    fn unmapped_address_faults() {
        let (mem, _frames, pt) = setup();
        let err = pt.translate(&mem, VirtAddr::new(0x6000_0000));
        assert!(matches!(err, Err(Error::HostPageFault { .. })));
    }

    #[test]
    fn unmap_removes_leaf_only() {
        let (mut mem, mut frames, pt) = setup();
        let va = VirtAddr::new(0x4000_0000);
        let pa = frames.alloc_frame().unwrap();
        pt.map_page(&mut mem, &mut frames, va, pa, PteFlags::user_rw())
            .unwrap();
        pt.unmap_page(&mut mem, va).unwrap();
        assert!(!pt.is_mapped(&mem, va));
        // Remapping reuses the intermediate tables.
        let stats = pt
            .map_page(&mut mem, &mut frames, va, pa, PteFlags::user_rw())
            .unwrap();
        assert_eq!(stats.tables_allocated, 0);
        // Unmapping twice faults.
        pt.unmap_page(&mut mem, va).unwrap();
        assert!(pt.unmap_page(&mut mem, va).is_err());
    }

    #[test]
    fn walk_reports_three_levels_for_mapped_page() {
        let (mut mem, mut frames, pt) = setup();
        let va = VirtAddr::new(0x4000_2000);
        let pa = frames.alloc_frame().unwrap();
        pt.map_page(&mut mem, &mut frames, va, pa, PteFlags::user_rw())
            .unwrap();
        let path = pt.walk(&mem, va).unwrap();
        assert_eq!(path.reads(), 3);
        assert_eq!(path.leaf().unwrap().phys_addr(), pa);
        // All three PTE addresses are distinct and inside DRAM.
        let addrs: Vec<PhysAddr> = path.entries.iter().map(|(a, _)| *a).collect();
        assert_ne!(addrs[0], addrs[1]);
        assert_ne!(addrs[1], addrs[2]);
        for a in addrs {
            assert!(mem.map().is_dram(a));
        }
    }

    #[test]
    fn walk_stops_at_invalid_level() {
        let (mem, _frames, pt) = setup();
        let path = pt.walk(&mem, VirtAddr::new(0x7000_0000)).unwrap();
        assert_eq!(path.reads(), 1);
        assert!(path.leaf().is_none());
    }

    #[test]
    fn pte_accesses_never_straddle_a_frame() {
        // Every PTE address a walk can produce is 8-byte aligned with the
        // whole entry inside one frame, so the page-table write path and the
        // IOMMU's PTW always hit the backing store's typed single-frame fast
        // path. Sweep the extreme indexes of every level, including the last
        // slot of a table page (offset PAGE_SIZE - 8).
        let base = PhysAddr::new(0x8010_0000);
        for level in 0..PT_LEVELS {
            for va in [
                VirtAddr::new(0),
                VirtAddr::new(u64::MAX >> (64 - 12 - 9 * PT_LEVELS as u64)),
                VirtAddr::new(0x4000_2000),
            ] {
                let addr = pte_address(base, va, level);
                assert_eq!(addr.raw() % 8, 0, "PTE at {addr} not 8-byte aligned");
                let in_frame = addr.raw() % sva_common::PAGE_SIZE;
                assert!(
                    in_frame + 8 <= sva_common::PAGE_SIZE,
                    "PTE at {addr} straddles a frame boundary"
                );
            }
        }
        // The max VPN index lands on the last slot of the table page.
        let last = pte_address(
            base,
            VirtAddr::new(u64::MAX >> (64 - 12 - 9 * PT_LEVELS as u64)),
            PT_LEVELS - 1,
        );
        assert_eq!(last.raw() - base.raw(), sva_common::PAGE_SIZE - 8);
    }
}
