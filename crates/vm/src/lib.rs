//! Sv39 virtual memory for the host process and the IOMMU.
//!
//! The RISC-V IOMMU translates IO virtual addresses using the very same
//! page-table format as the host MMU (Sv39 for the paper's 64-bit CVA6
//! platform): a three-level radix tree of 512-entry tables rooted at a
//! physical page. This crate implements that structure **inside the simulated
//! physical memory**, so the IOMMU's page-table walker really does issue
//! three dependent memory reads per miss — the property at the heart of the
//! paper's evaluation.
//!
//! * [`pte`] — the Sv39 page-table-entry bit layout;
//! * [`frame`] — a physical frame allocator for page tables and user pages;
//! * [`page_table`] — building, walking and tearing down Sv39 trees in
//!   simulated memory;
//! * [`space`] — a process address space: virtual buffer allocation backed by
//!   physical frames and mapped in the process page table (the buffers the
//!   OpenMP application allocates with `malloc`).
//!
//! # Example
//!
//! ```
//! use sva_mem::MemorySystem;
//! use sva_vm::{AddressSpace, FrameAllocator};
//! use sva_common::PAGE_SIZE;
//!
//! let mut mem = MemorySystem::default();
//! let mut frames = FrameAllocator::linux_pool();
//! let mut space = AddressSpace::new(&mut mem, &mut frames).unwrap();
//! let va = space.alloc_buffer(&mut mem, &mut frames, 4 * PAGE_SIZE).unwrap();
//! let pa = space.translate(&mem, va).unwrap();
//! assert!(mem.map().is_dram(pa));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod frame;
pub mod page_table;
pub mod pte;
pub mod space;

pub use frame::FrameAllocator;
pub use page_table::{MapStats, PageTable, WalkPath, PT_LEVELS};
pub use pte::{Pte, PteFlags};
pub use space::AddressSpace;
