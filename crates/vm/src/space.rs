//! Process address spaces.
//!
//! An [`AddressSpace`] models the user process that runs the heterogeneous
//! OpenMP application: it owns an Sv39 page table, a virtual-address bump
//! allocator standing in for `malloc`, and the backing physical frames. When
//! shared virtual addressing is used, the accelerator is attached to the very
//! same page table through the IOMMU device context, so the buffers allocated
//! here are directly addressable by the device.

use serde::{Deserialize, Serialize};
use sva_common::{Error, PhysAddr, Result, VirtAddr, PAGE_SIZE};
use sva_mem::MemorySystem;

use crate::frame::FrameAllocator;
use crate::page_table::{MapStats, PageTable};
use crate::pte::PteFlags;

/// Lowest virtual address handed out to user buffers (keeps the null page
/// and low addresses unmapped, like a real process layout).
const USER_HEAP_BASE: u64 = 0x1000_0000;

/// A user process address space: page table plus a simple `malloc`-style
/// virtual allocator.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressSpace {
    page_table: PageTable,
    heap_next: VirtAddr,
    mapped_pages: u64,
    /// Process address-space identifier (PSCID in the IOMMU device context).
    pscid: u32,
}

/// A buffer allocated in an address space.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserBuffer {
    /// Virtual base address (page-aligned).
    pub va: VirtAddr,
    /// Length in bytes as requested by the caller.
    pub len: u64,
}

impl UserBuffer {
    /// Number of pages spanned by the buffer.
    pub const fn pages(&self) -> u64 {
        self.len.div_ceil(PAGE_SIZE)
    }
}

impl AddressSpace {
    /// Creates an address space with a fresh root page table.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfMemory`] if the root table cannot be allocated.
    pub fn new(_mem: &mut MemorySystem, frames: &mut FrameAllocator) -> Result<Self> {
        Ok(Self {
            page_table: PageTable::create(frames)?,
            heap_next: VirtAddr::new(USER_HEAP_BASE),
            mapped_pages: 0,
            pscid: 1,
        })
    }

    /// The process' page table (shared with the IOMMU for zero-copy
    /// offloads).
    pub const fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Physical address of the root page table (the value programmed into
    /// `satp` and into the IOMMU device context).
    pub const fn root(&self) -> PhysAddr {
        self.page_table.root()
    }

    /// Process address-space identifier.
    pub const fn pscid(&self) -> u32 {
        self.pscid
    }

    /// Number of user pages currently mapped.
    pub const fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    /// Allocates a virtual buffer of `len` bytes backed by fresh physical
    /// frames (the simulation's `malloc` + first-touch population).
    ///
    /// The backing frames are allocated page-by-page, so consecutive virtual
    /// pages are *not* guaranteed to be physically contiguous — which is
    /// exactly why copy-based offloading needs the separate reserved DRAM
    /// area and why SVA needs per-page translation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfMemory`] if frames are exhausted, or
    /// [`Error::InvalidConfig`] for a zero-length request.
    pub fn alloc_buffer(
        &mut self,
        mem: &mut MemorySystem,
        frames: &mut FrameAllocator,
        len: u64,
    ) -> Result<VirtAddr> {
        if len == 0 {
            return Err(Error::InvalidConfig {
                reason: "cannot allocate a zero-length buffer".to_string(),
            });
        }
        let va = self.heap_next;
        let pages = len.div_ceil(PAGE_SIZE);
        for i in 0..pages {
            let pa = frames.alloc_frame()?;
            self.page_table
                .map_page(mem, frames, va + i * PAGE_SIZE, pa, PteFlags::user_rw())?;
            self.mapped_pages += 1;
        }
        // Leave a guard page between allocations.
        self.heap_next = va + (pages + 1) * PAGE_SIZE;
        Ok(va)
    }

    /// Translates a virtual address of this process to its physical address.
    ///
    /// # Errors
    ///
    /// Returns [`Error::HostPageFault`] for unmapped addresses.
    pub fn translate(&self, mem: &MemorySystem, va: VirtAddr) -> Result<PhysAddr> {
        self.page_table.translate(mem, va)
    }

    /// Functional read of `buf.len()` bytes at virtual address `va`
    /// (crossing pages as needed).
    ///
    /// # Errors
    ///
    /// Returns [`Error::HostPageFault`] for unmapped addresses.
    pub fn read_virt(&self, mem: &MemorySystem, va: VirtAddr, buf: &mut [u8]) -> Result<()> {
        self.for_each_chunk(mem, va, buf.len() as u64, |mem, pa, range| {
            mem.read_phys(pa, &mut buf[range.0..range.1])
        })
    }

    /// Functional write of `buf` at virtual address `va`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::HostPageFault`] for unmapped addresses.
    pub fn write_virt(&self, mem: &mut MemorySystem, va: VirtAddr, buf: &[u8]) -> Result<()> {
        self.write_chunks(mem, va, buf)
    }

    /// Functional read of a little-endian `f32` at `va`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::HostPageFault`] for unmapped addresses.
    pub fn read_f32(&self, mem: &MemorySystem, va: VirtAddr) -> Result<f32> {
        let mut b = [0u8; 4];
        self.read_virt(mem, va, &mut b)?;
        Ok(f32::from_le_bytes(b))
    }

    /// Functional write of a little-endian `f32` at `va`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::HostPageFault`] for unmapped addresses.
    pub fn write_f32(&self, mem: &mut MemorySystem, va: VirtAddr, value: f32) -> Result<()> {
        self.write_virt(mem, va, &value.to_le_bytes())
    }

    /// Applies `f` to each physically contiguous chunk of the virtual range.
    fn for_each_chunk<F>(&self, mem: &MemorySystem, va: VirtAddr, len: u64, mut f: F) -> Result<()>
    where
        F: FnMut(&MemorySystem, PhysAddr, (usize, usize)) -> Result<()>,
    {
        let mut done = 0u64;
        while done < len {
            let cur_va = va + done;
            let pa = self.translate(mem, cur_va)?;
            let in_page = PAGE_SIZE - cur_va.page_offset();
            let chunk = (len - done).min(in_page);
            f(mem, pa, (done as usize, (done + chunk) as usize))?;
            done += chunk;
        }
        Ok(())
    }

    /// Maps an explicit virtual→physical range into the process (used by the
    /// driver model for mapping device windows into user space).
    ///
    /// # Errors
    ///
    /// Propagates mapping failures from [`PageTable::map_range`].
    pub fn map_external(
        &mut self,
        mem: &mut MemorySystem,
        frames: &mut FrameAllocator,
        va: VirtAddr,
        pa: PhysAddr,
        len: u64,
        flags: PteFlags,
    ) -> Result<MapStats> {
        let stats = self.page_table.map_range(mem, frames, va, pa, len, flags)?;
        self.mapped_pages += len.div_ceil(PAGE_SIZE);
        Ok(stats)
    }
}

impl AddressSpace {
    /// Write loop mirroring [`AddressSpace::for_each_chunk`] but with mutable
    /// memory access.
    fn write_chunks(&self, mem: &mut MemorySystem, va: VirtAddr, buf: &[u8]) -> Result<()> {
        let len = buf.len() as u64;
        let mut done = 0u64;
        while done < len {
            let cur_va = va + done;
            let pa = self.translate(mem, cur_va)?;
            let in_page = PAGE_SIZE - cur_va.page_offset();
            let chunk = (len - done).min(in_page);
            mem.write_phys(pa, &buf[done as usize..(done + chunk) as usize])?;
            done += chunk;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MemorySystem, FrameAllocator, AddressSpace) {
        let mut mem = MemorySystem::default();
        let mut frames = FrameAllocator::linux_pool();
        let space = AddressSpace::new(&mut mem, &mut frames).unwrap();
        (mem, frames, space)
    }

    #[test]
    fn buffers_are_page_aligned_and_guarded() {
        let (mut mem, mut frames, mut space) = setup();
        let a = space.alloc_buffer(&mut mem, &mut frames, 100).unwrap();
        let b = space.alloc_buffer(&mut mem, &mut frames, 100).unwrap();
        assert!(a.is_aligned(PAGE_SIZE));
        assert!(b.is_aligned(PAGE_SIZE));
        // One page of data plus one guard page.
        assert_eq!(b - a, 2 * PAGE_SIZE);
        assert_eq!(space.mapped_pages(), 2);
    }

    #[test]
    fn zero_length_allocation_is_rejected() {
        let (mut mem, mut frames, mut space) = setup();
        assert!(space.alloc_buffer(&mut mem, &mut frames, 0).is_err());
    }

    #[test]
    fn virtual_io_roundtrip_across_pages() {
        let (mut mem, mut frames, mut space) = setup();
        let va = space
            .alloc_buffer(&mut mem, &mut frames, 3 * PAGE_SIZE)
            .unwrap();
        let data: Vec<u8> = (0..(3 * PAGE_SIZE) as usize)
            .map(|i| (i % 253) as u8)
            .collect();
        space.write_virt(&mut mem, va, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        space.read_virt(&mem, va, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn f32_accessors() {
        let (mut mem, mut frames, mut space) = setup();
        let va = space.alloc_buffer(&mut mem, &mut frames, 64).unwrap();
        space.write_f32(&mut mem, va + 8, 1.25).unwrap();
        assert_eq!(space.read_f32(&mem, va + 8).unwrap(), 1.25);
    }

    #[test]
    fn unmapped_access_faults() {
        let (mem, _frames, space) = setup();
        let mut buf = [0u8; 4];
        assert!(matches!(
            space.read_virt(&mem, VirtAddr::new(0x9999_0000), &mut buf),
            Err(Error::HostPageFault { .. })
        ));
    }

    #[test]
    fn translation_matches_mapping() {
        let (mut mem, mut frames, mut space) = setup();
        let va = space
            .alloc_buffer(&mut mem, &mut frames, 2 * PAGE_SIZE)
            .unwrap();
        let pa0 = space.translate(&mem, va).unwrap();
        let pa1 = space.translate(&mem, va + PAGE_SIZE).unwrap();
        assert!(mem.map().is_dram(pa0));
        assert!(mem.map().is_dram(pa1));
        assert_ne!(pa0, pa1);
        // Offsets within a page are preserved.
        assert_eq!(space.translate(&mem, va + 5).unwrap(), pa0 + 5);
    }

    #[test]
    fn map_external_window() {
        let (mut mem, mut frames, mut space) = setup();
        let target = PhysAddr::new(0x8000_0000 + 0x10_0000);
        let va = VirtAddr::new(0x2000_0000);
        space
            .map_external(
                &mut mem,
                &mut frames,
                va,
                target,
                PAGE_SIZE,
                PteFlags::user_rw(),
            )
            .unwrap();
        assert_eq!(space.translate(&mem, va).unwrap(), target);
    }
}
