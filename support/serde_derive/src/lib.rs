//! No-op derive macros standing in for `serde_derive` in the offline build.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a marker;
//! nothing serializes through serde at runtime (JSON output is hand-rolled in
//! `sva_bench`). These derives therefore expand to nothing, which keeps every
//! `derive` attribute in the tree compiling without network access.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
