//! Offline stand-in for the `criterion` bench harness.
//!
//! The environment this workspace builds in has no network access, so the
//! real statistical harness is unavailable. This stub keeps `cargo bench`
//! (and `cargo test --benches`) compiling and *executing* every benchmark
//! body: each `Bencher::iter` closure runs a small fixed number of times and
//! the wall-clock mean is printed. Numbers are indicative only — swap the
//! `support/criterion` path entry in the workspace manifest for the real
//! crates.io `criterion` to get proper statistics.

use std::time::Instant;

/// Iterations each benchmark body is executed by the stub.
const STUB_ITERS: u32 = 3;

/// Run-once replacement for `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Mirrors `Criterion::sample_size` (recorded but unused by the stub).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_named(name, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }
}

/// Run-once replacement for `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<S: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        run_named(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Replacement for `criterion::Bencher`: runs the body a fixed number of
/// times and records the mean wall-clock time.
#[derive(Debug, Default)]
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Executes `f` [`STUB_ITERS`] times, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..STUB_ITERS {
            black_box(f());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / f64::from(STUB_ITERS);
    }
}

fn run_named<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut b = Bencher::default();
    f(&mut b);
    println!(
        "bench {name}: {:.0} ns/iter (criterion stub)",
        b.nanos_per_iter
    );
}

/// Identity function mirroring `criterion::black_box` well enough for the
/// stub's purposes (prevents trivial dead-code elimination of results).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Mirrors `criterion_group!`; only the `name/config/targets` form used in
/// this workspace is supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirrors `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
