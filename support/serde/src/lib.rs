//! Offline stand-in for `serde`.
//!
//! The simulation crates tag their statistics and configuration types with
//! `#[derive(Serialize, Deserialize)]` so they stay ready for structured
//! export, but no code path serializes through serde (the bench drivers emit
//! JSON by hand). This crate provides the two marker traits and re-exports
//! the no-op derives from [`serde_derive`], which is all the workspace needs
//! to build without network access. Replace the `support/serde` path entry in
//! the workspace manifest with the real crates.io `serde` to get functional
//! serialization back.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the stub).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the stub).
pub trait Deserialize<'de> {}
